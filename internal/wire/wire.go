// Package wire defines Stabilizer's binary wire protocol: length-prefixed
// frames carrying one of a small set of message kinds. The protocol is
// deliberately minimal — every message is a separately sequenced object and
// the transport layer guarantees lossless FIFO delivery per link, so no
// per-message negotiation is needed (paper §III-A).
//
// Frame layout:
//
//	uint32   big-endian body length (kind byte + payload)
//	uint8    kind
//	[]byte   kind-specific payload
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind identifies the message type carried by a frame.
type Kind uint8

// Message kinds. Values are part of the wire contract; do not renumber.
const (
	KindHello Kind = iota + 1
	KindHelloAck
	KindData
	KindAck
	KindHeartbeat
	KindApp
	KindHeartbeatEcho
)

// String returns the kind's human-readable name.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindHelloAck:
		return "helloack"
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindHeartbeat:
		return "heartbeat"
	case KindApp:
		return "app"
	case KindHeartbeatEcho:
		return "hbecho"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MaxFrameSize bounds a single frame body. Data payloads are normally
// chunked to 8 KB by the applications (paper §VI-B), but the library itself
// allows larger messages up to this limit.
const MaxFrameSize = 64 << 20

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	ErrShortFrame    = errors.New("wire: truncated frame body")
	ErrUnknownKind   = errors.New("wire: unknown message kind")
)

// Message is any decodable protocol message.
type Message interface {
	// Kind reports the message's wire kind.
	Kind() Kind
	// AppendBody appends the kind-specific payload to buf.
	AppendBody(buf []byte) []byte
	// DecodeBody parses the kind-specific payload.
	DecodeBody(body []byte) error
}

// Hello is the first frame on a freshly dialed link: it identifies the
// dialing node so the accepting side can bind the connection to a peer.
type Hello struct {
	// From is the 1-based WAN node index of the dialer.
	From uint16
	// Epoch distinguishes successive processes at the same node; a higher
	// epoch supersedes links from older incarnations.
	Epoch uint64
}

// HelloAck is the accepting side's reply: it reports the highest contiguous
// data sequence it has received from the dialer, so the dialer can resume
// streaming from LastSeq+1 after a reconnect.
type HelloAck struct {
	From    uint16
	LastSeq uint64
}

// Data carries one sequenced data message on the data plane.
type Data struct {
	// Seq is the origin-assigned sequence number (1-based, dense).
	Seq uint64
	// SentUnixNano is the origin's send timestamp, used by the
	// experiment harnesses to compute end-to-end latency.
	SentUnixNano int64
	// Payload is the application data.
	Payload []byte
}

// Ack is one monotonic stability report on the control plane: node By has
// observed stability Type for all of node Origin's messages up to Seq.
// Newer values overwrite older ones — receivers only keep the maximum.
type Ack struct {
	Origin uint16
	By     uint16
	Type   uint16
	Seq    uint64
}

// Heartbeat keeps links alive and drives failure detection.
type Heartbeat struct {
	// Clock is a sender-local monotonic counter.
	Clock uint64
}

// HeartbeatEcho returns a peer's heartbeat clock to it. A heartbeat
// received while the echoing node's own link back to the sender is busy
// draining data is answered with this frame riding that data stream as a
// batch trailer, instead of a competing write on the idle incoming
// connection; the original same-connection Heartbeat echo remains the idle
// fallback.
type HeartbeatEcho struct {
	// Clock is the echoed sender-local counter.
	Clock uint64
}

// App carries an application-level request or response outside the
// sequenced data stream (e.g. quorum read RPCs).
type App struct {
	// ID correlates a response with its request.
	ID uint64
	// Method is an application-defined selector.
	Method uint16
	// IsResponse distinguishes replies from requests.
	IsResponse bool
	// From is the sending node's index.
	From uint16
	// Payload is the application body.
	Payload []byte
}

// Compile-time interface checks.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*HelloAck)(nil)
	_ Message = (*Data)(nil)
	_ Message = (*Ack)(nil)
	_ Message = (*Heartbeat)(nil)
	_ Message = (*App)(nil)
	_ Message = (*HeartbeatEcho)(nil)
)

// Kind implements Message.
func (*Hello) Kind() Kind { return KindHello }

// Kind implements Message.
func (*HelloAck) Kind() Kind { return KindHelloAck }

// Kind implements Message.
func (*Data) Kind() Kind { return KindData }

// Kind implements Message.
func (*Ack) Kind() Kind { return KindAck }

// Kind implements Message.
func (*Heartbeat) Kind() Kind { return KindHeartbeat }

// Kind implements Message.
func (*App) Kind() Kind { return KindApp }

// Kind implements Message.
func (*HeartbeatEcho) Kind() Kind { return KindHeartbeatEcho }

// AppendBody implements Message.
func (m *Hello) AppendBody(buf []byte) []byte {
	buf = appendU16(buf, m.From)
	return appendU64(buf, m.Epoch)
}

// DecodeBody implements Message.
func (m *Hello) DecodeBody(body []byte) error {
	d := decoder{buf: body}
	m.From = d.u16()
	m.Epoch = d.u64()
	return d.finish()
}

// AppendBody implements Message.
func (m *HelloAck) AppendBody(buf []byte) []byte {
	buf = appendU16(buf, m.From)
	return appendU64(buf, m.LastSeq)
}

// DecodeBody implements Message.
func (m *HelloAck) DecodeBody(body []byte) error {
	d := decoder{buf: body}
	m.From = d.u16()
	m.LastSeq = d.u64()
	return d.finish()
}

// AppendBody implements Message.
func (m *Data) AppendBody(buf []byte) []byte {
	buf = appendU64(buf, m.Seq)
	buf = appendU64(buf, uint64(m.SentUnixNano))
	return append(buf, m.Payload...)
}

// DecodeBody implements Message.
func (m *Data) DecodeBody(body []byte) error {
	d := decoder{buf: body}
	m.Seq = d.u64()
	m.SentUnixNano = int64(d.u64())
	if d.err != nil {
		return d.err
	}
	m.Payload = d.rest()
	return nil
}

// AppendBody implements Message.
func (m *Ack) AppendBody(buf []byte) []byte {
	buf = appendU16(buf, m.Origin)
	buf = appendU16(buf, m.By)
	buf = appendU16(buf, m.Type)
	return appendU64(buf, m.Seq)
}

// DecodeBody implements Message.
func (m *Ack) DecodeBody(body []byte) error {
	d := decoder{buf: body}
	m.Origin = d.u16()
	m.By = d.u16()
	m.Type = d.u16()
	m.Seq = d.u64()
	return d.finish()
}

// AppendBody implements Message.
func (m *Heartbeat) AppendBody(buf []byte) []byte {
	return appendU64(buf, m.Clock)
}

// DecodeBody implements Message.
func (m *Heartbeat) DecodeBody(body []byte) error {
	d := decoder{buf: body}
	m.Clock = d.u64()
	return d.finish()
}

// AppendBody implements Message.
func (m *HeartbeatEcho) AppendBody(buf []byte) []byte {
	return appendU64(buf, m.Clock)
}

// DecodeBody implements Message.
func (m *HeartbeatEcho) DecodeBody(body []byte) error {
	d := decoder{buf: body}
	m.Clock = d.u64()
	return d.finish()
}

// AppendBody implements Message.
func (m *App) AppendBody(buf []byte) []byte {
	buf = appendU64(buf, m.ID)
	buf = appendU16(buf, m.Method)
	if m.IsResponse {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendU16(buf, m.From)
	return append(buf, m.Payload...)
}

// DecodeBody implements Message.
func (m *App) DecodeBody(body []byte) error {
	d := decoder{buf: body}
	m.ID = d.u64()
	m.Method = d.u16()
	m.IsResponse = d.u8() != 0
	m.From = d.u16()
	if d.err != nil {
		return d.err
	}
	m.Payload = d.rest()
	return nil
}

// AppendFrame appends a complete frame (length prefix, kind byte, body) for
// msg to buf and returns the extended slice.
func AppendFrame(buf []byte, msg Message) []byte {
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	buf = append(buf, byte(msg.Kind()))
	buf = msg.AppendBody(buf)
	binary.BigEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	return buf
}

// DataFrameOverhead is the encoded size of a Data frame minus its payload:
// the 4-byte length prefix, the kind byte, and the fixed seq + timestamp
// fields. A Data frame on the wire is exactly a DataFrameOverhead-byte
// header followed by the raw payload, which is what lets the transport hand
// header and payload to the kernel as separate iovecs (writev) without ever
// copying the payload.
const DataFrameOverhead = 4 + 1 + 8 + 8

// AppendDataFrameHeader appends the complete frame header for a Data
// message with a payloadLen-byte payload: the bytes such that
// header||payload is identical to AppendFrame(nil, &Data{...}). It exists
// so vectored writers can frame payloads in place.
func AppendDataFrameHeader(buf []byte, seq uint64, sentUnixNano int64, payloadLen int) []byte {
	var b [DataFrameOverhead]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(DataFrameOverhead-4+payloadLen))
	b[4] = byte(KindData)
	binary.BigEndian.PutUint64(b[5:13], seq)
	binary.BigEndian.PutUint64(b[13:21], uint64(sentUnixNano))
	return append(buf, b[:]...)
}

// WriteFrame encodes msg as one frame and writes it to w.
func WriteFrame(w io.Writer, msg Message) error {
	buf := AppendFrame(nil, msg)
	_, err := w.Write(buf)
	return err
}

// Reader decodes a stream of frames. It owns an internal buffered reader;
// do not read from the underlying stream while a Reader is attached.
//
// Readers are zero-allocation on the hot path: frame bodies are read into
// an internal buffer reused across calls, and the high-rate message kinds
// (Data, Ack, Heartbeat) are decoded into Reader-owned scratch structs.
type Reader struct {
	br    *bufio.Reader
	hdr   [4]byte // length-prefix scratch, kept here so it never escapes
	buf   []byte  // reusable frame-body buffer (slow path: oversized frames)
	arena payloadArena

	// Scratch messages for the hot-path kinds; handed out by Next and
	// overwritten by the following call.
	data Data
	ack  Ack
	hb   Heartbeat
	hbe  HeartbeatEcho
}

// payloadArena amortizes the per-Data-frame payload allocation: payloads
// are carved from shared slab chunks instead of individually heap
// allocated. A carved payload stays valid indefinitely (it is never reused
// — a full chunk is simply abandoned to the collector), at the cost that a
// long-retained payload pins its whole chunk; payloads big enough to make
// that waste matter are allocated exactly instead.
type payloadArena struct {
	buf []byte
}

// arenaChunk is the slab size; payloads of arenaChunk/4 bytes or more
// bypass the arena so one retained payload never pins more than 4x its own
// size.
const arenaChunk = 32 << 10

// copyOut returns a stable copy of src.
func (a *payloadArena) copyOut(src []byte) []byte {
	n := len(src)
	if n == 0 {
		return []byte{}
	}
	if n >= arenaChunk/4 {
		out := make([]byte, n)
		copy(out, src)
		return out
	}
	if cap(a.buf)-len(a.buf) < n {
		a.buf = make([]byte, 0, arenaChunk)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+n]
	out := a.buf[off : off+n : off+n] // full-cap: appends cannot bleed over
	copy(out, src)
	return out
}

// bufKeep caps how much body-buffer capacity a Reader retains between
// frames: one oversized frame must not pin its buffer forever.
const bufKeep = 1 << 20

// NewReader wraps r in a frame decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next reads and decodes the next frame. The returned message is valid
// only until the following call to Next — Data, Ack, Heartbeat and
// HeartbeatEcho decode into Reader-owned scratch structs. Payload slices
// (Data.Payload, App.Payload) are stable copies that remain valid
// indefinitely; callers that need other fields past the next call must
// copy them out.
//
// Frames that fit inside the internal buffer are decoded in place via
// Peek/Discard, so the body is copied at most once (payload into the
// arena) instead of twice; only oversized frames take the copying path.
func (r *Reader) Next() (Message, error) {
	hdr, err := r.br.Peek(4)
	if len(hdr) < 4 {
		return nil, headerErr(len(hdr), err)
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 {
		return nil, ErrShortFrame
	}
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if total := 4 + int(n); total <= r.br.Size() {
		if cap(r.buf) > bufKeep {
			r.buf = nil // a normal frame followed an oversize one: unpin
		}
		frame, err := r.br.Peek(total)
		if len(frame) < total {
			if err == nil || errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		msg, err := r.decodeBody(frame[4:])
		if err != nil {
			return nil, err
		}
		if _, err := r.br.Discard(total); err != nil {
			return nil, err
		}
		return msg, nil
	}

	// Oversized frame: stage the body in the reusable buffer.
	if _, err := r.br.Discard(4); err != nil {
		return nil, err
	}
	if uint32(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	body := r.buf[:n]
	if _, err := io.ReadFull(r.br, body); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if cap(r.buf) > bufKeep && n <= bufKeep {
		r.buf = nil // drop an oversized buffer once a normal frame follows
	}
	return r.decodeBody(body)
}

// headerErr maps a short length-prefix peek onto io.ReadFull semantics: a
// clean boundary is io.EOF, a torn prefix is io.ErrUnexpectedEOF.
func headerErr(got int, err error) error {
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	if errors.Is(err, io.EOF) && got > 0 {
		return io.ErrUnexpectedEOF
	}
	return err
}

// decodeBody decodes one frame body (kind byte + fields). body may alias
// the internal read buffer: every retained slice is copied out.
func (r *Reader) decodeBody(body []byte) (Message, error) {
	if Kind(body[0]) == KindData {
		// Decoded by hand so the payload goes straight from the read
		// buffer into the arena, skipping the generic copy in rest().
		b := body[1:]
		if len(b) < 16 {
			return nil, fmt.Errorf("wire: decode data: %w", ErrShortFrame)
		}
		r.data.Seq = binary.BigEndian.Uint64(b)
		r.data.SentUnixNano = int64(binary.BigEndian.Uint64(b[8:]))
		r.data.Payload = r.arena.copyOut(b[16:])
		return &r.data, nil
	}
	msg, err := r.message(Kind(body[0]))
	if err != nil {
		return nil, err
	}
	if err := msg.DecodeBody(body[1:]); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", msg.Kind(), err)
	}
	return msg, nil
}

// message returns the destination struct for kind k: a reused scratch
// struct for the hot-path kinds, a fresh allocation otherwise (handshake
// frames are rare; App messages are retained by application handlers).
func (r *Reader) message(k Kind) (Message, error) {
	switch k {
	case KindHello:
		return &Hello{}, nil
	case KindHelloAck:
		return &HelloAck{}, nil
	case KindData:
		return &r.data, nil
	case KindAck:
		return &r.ack, nil
	case KindHeartbeat:
		return &r.hb, nil
	case KindHeartbeatEcho:
		return &r.hbe, nil
	case KindApp:
		return &App{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(k))
	}
}

// --- primitive encoding helpers ---

func appendU16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

func appendU64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.err = ErrShortFrame
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 2 {
		d.err = ErrShortFrame
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = ErrShortFrame
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

// rest returns a copy of the remaining bytes.
func (d *decoder) rest() []byte {
	out := make([]byte, len(d.buf))
	copy(out, d.buf)
	d.buf = nil
	return out
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf))
	}
	return nil
}
