package paxos

import (
	"sync"

	"stabilizer/internal/core"
)

// Bus abstracts the messaging substrate a replica runs on: FIFO, lossless
// links between every pair of nodes.
type Bus interface {
	// Self is the local node's 1-based index; N the cluster size.
	Self() int
	N() int
	// Broadcast sends payload to every other node, FIFO per sender.
	Broadcast(payload []byte) error
	// Send sends payload to one node, FIFO per pair.
	Send(to int, payload []byte) error
	// SetHandler installs the delivery callback (call before traffic).
	SetHandler(fn func(from int, payload []byte))
}

// methodPaxos is the App selector for point-to-point paxos messages.
const methodPaxos uint16 = 0x5058

// CoreBus runs paxos over a Stabilizer node: broadcasts ride the streaming
// data plane (Accept dissemination enjoys retransmission and FIFO for
// free), point-to-point messages use the App channel. The paxos protocol
// itself makes no use of stability predicates — it brings its own quorum
// rule, which is the thing the Fig. 6 experiment compares.
type CoreBus struct {
	node *core.Node

	mu sync.Mutex
	fn func(from int, payload []byte)
}

var _ Bus = (*CoreBus)(nil)

// NewCoreBus wraps a Stabilizer node as a paxos bus.
func NewCoreBus(node *core.Node) *CoreBus {
	b := &CoreBus{node: node}
	node.OnDeliver(func(m core.Message) {
		b.dispatch(m.Origin, m.Payload)
	})
	node.OnApp(func(m core.AppMessage) {
		if m.Method != methodPaxos || m.IsResponse {
			return
		}
		b.dispatch(m.From, m.Payload)
	})
	return b
}

// Self implements Bus.
func (b *CoreBus) Self() int { return b.node.Self() }

// N implements Bus.
func (b *CoreBus) N() int { return b.node.Topology().N() }

// Broadcast implements Bus.
func (b *CoreBus) Broadcast(payload []byte) error {
	_, err := b.node.SendNoCopy(payload)
	return err
}

// Send implements Bus.
func (b *CoreBus) Send(to int, payload []byte) error {
	return b.node.SendApp(to, 0, methodPaxos, false, payload)
}

// SetHandler implements Bus.
func (b *CoreBus) SetHandler(fn func(from int, payload []byte)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fn = fn
}

func (b *CoreBus) dispatch(from int, payload []byte) {
	if len(payload) < 2 || payload[0] != 0x50 || payload[1] != 0x58 {
		return // not paxos traffic
	}
	b.mu.Lock()
	fn := b.fn
	b.mu.Unlock()
	if fn != nil {
		fn(from, payload)
	}
}

// MemBus is an in-process bus for unit and property tests: each node has a
// mailbox drained by a single dispatcher goroutine, so delivery order per
// receiver matches send order (FIFO per pair and then some), with optional
// message dropping to exercise loss tolerance.
type MemBus struct {
	self int
	hub  *MemHub

	mu         sync.Mutex
	fn         func(from int, payload []byte)
	mailbox    []memMsg
	notEmpty   sync.Cond
	dispatched bool
	closed     bool
}

type memMsg struct {
	from    int
	payload []byte
}

var _ Bus = (*MemBus)(nil)

// MemHub connects MemBus endpoints.
type MemHub struct {
	n     int
	mu    sync.Mutex
	buses map[int]*MemBus
	// Drop, when set, is consulted per message; returning true drops it.
	Drop func(from, to int, payload []byte) bool

	flightMu sync.Mutex
	flight   sync.Cond
	inflight int
}

// NewMemHub creates a hub for n nodes.
func NewMemHub(n int) *MemHub {
	h := &MemHub{n: n, buses: make(map[int]*MemBus, n)}
	h.flight.L = &h.flightMu
	return h
}

func (h *MemHub) addFlight(d int) {
	h.flightMu.Lock()
	h.inflight += d
	if h.inflight == 0 {
		h.flight.Broadcast()
	}
	h.flightMu.Unlock()
}

// Bus returns (creating on first use) node idx's endpoint.
func (h *MemHub) Bus(idx int) *MemBus {
	h.mu.Lock()
	defer h.mu.Unlock()
	if b, ok := h.buses[idx]; ok {
		return b
	}
	b := &MemBus{self: idx, hub: h}
	b.notEmpty.L = &b.mu
	h.buses[idx] = b
	return b
}

// Wait blocks until the hub is quiescent: no message queued or being
// handled. Handlers that send further messages extend the wait, so Wait
// observes the end of whole message cascades (test barrier).
func (h *MemHub) Wait() {
	h.flightMu.Lock()
	for h.inflight > 0 {
		h.flight.Wait()
	}
	h.flightMu.Unlock()
}

// Close stops every endpoint's dispatcher.
func (h *MemHub) Close() {
	h.mu.Lock()
	buses := make([]*MemBus, 0, len(h.buses))
	for _, b := range h.buses {
		buses = append(buses, b)
	}
	h.mu.Unlock()
	for _, b := range buses {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		b.notEmpty.Broadcast()
	}
}

// Self implements Bus.
func (b *MemBus) Self() int { return b.self }

// N implements Bus.
func (b *MemBus) N() int { return b.hub.n }

// Broadcast implements Bus.
func (b *MemBus) Broadcast(payload []byte) error {
	for to := 1; to <= b.hub.n; to++ {
		if to == b.self {
			continue
		}
		if err := b.Send(to, payload); err != nil {
			return err
		}
	}
	return nil
}

// Send implements Bus. Messages land in the receiver's mailbox and are
// delivered in order by its dispatcher goroutine.
func (b *MemBus) Send(to int, payload []byte) error {
	h := b.hub
	h.mu.Lock()
	target := h.buses[to]
	drop := h.Drop
	h.mu.Unlock()
	if target == nil {
		return nil // node not created yet; message lost (like a dead peer)
	}
	if drop != nil && drop(b.self, to, payload) {
		return nil
	}
	cp := append([]byte{}, payload...)
	h.addFlight(1)
	target.enqueue(memMsg{from: b.self, payload: cp})
	return nil
}

// SetHandler implements Bus. The dispatcher starts on first installation.
func (b *MemBus) SetHandler(fn func(from int, payload []byte)) {
	b.mu.Lock()
	b.fn = fn
	start := !b.dispatched
	b.dispatched = true
	b.mu.Unlock()
	if start {
		go b.dispatch()
	}
}

func (b *MemBus) enqueue(m memMsg) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.hub.addFlight(-1)
		return
	}
	b.mailbox = append(b.mailbox, m)
	b.mu.Unlock()
	b.notEmpty.Broadcast()
}

func (b *MemBus) dispatch() {
	for {
		b.mu.Lock()
		for len(b.mailbox) == 0 && !b.closed {
			b.notEmpty.Wait()
		}
		if b.closed {
			// Drain accounting for any stranded messages.
			stranded := len(b.mailbox)
			b.mailbox = nil
			b.mu.Unlock()
			b.hub.addFlight(-stranded)
			return
		}
		m := b.mailbox[0]
		b.mailbox = b.mailbox[1:]
		fn := b.fn
		b.mu.Unlock()
		if fn != nil {
			fn(m.from, m.payload)
		}
		b.hub.addFlight(-1)
	}
}
