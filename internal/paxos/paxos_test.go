package paxos

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func startReplicas(t *testing.T, n int) (*MemHub, []*Replica) {
	t.Helper()
	hub := NewMemHub(n)
	replicas := make([]*Replica, n)
	for i := 1; i <= n; i++ {
		replicas[i-1] = NewReplica(hub.Bus(i))
	}
	t.Cleanup(func() {
		for _, r := range replicas {
			r.Close()
		}
		hub.Close()
	})
	return hub, replicas
}

func campaign(t *testing.T, r *Replica) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Campaign(ctx); err != nil {
		t.Fatalf("campaign: %v", err)
	}
}

func TestProposeCommitsOnAll(t *testing.T) {
	hub, rs := startReplicas(t, 5)
	campaign(t, rs[0])

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var slots []uint64
	for i := 0; i < 10; i++ {
		slot, err := rs[0].Propose(ctx, []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		slots = append(slots, slot)
	}
	hub.Wait()
	for i, slot := range slots {
		want := []byte(fmt.Sprintf("v%d", i))
		for ri, r := range rs {
			v, ok := r.Value(slot)
			if !ok && ri != 0 {
				// Followers commit when the next Accept piggybacks the
				// watermark; the final slots may still be uncommitted
				// remotely. Only the leader must have all.
				continue
			}
			if ok && !bytes.Equal(v, want) {
				t.Fatalf("replica %d slot %d = %q, want %q", ri+1, slot, v, want)
			}
		}
	}
	if got := rs[0].CommittedThrough(); got != slots[len(slots)-1] {
		t.Fatalf("leader committed through %d, want %d", got, slots[len(slots)-1])
	}
}

func TestApplyInOrder(t *testing.T) {
	hub, rs := startReplicas(t, 3)
	var mu sync.Mutex
	applied := make(map[int][]uint64)
	for i, r := range rs {
		idx := i
		r.OnApply(func(slot uint64, value []byte) {
			mu.Lock()
			applied[idx] = append(applied[idx], slot)
			mu.Unlock()
		})
	}
	campaign(t, rs[0])
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 20; i++ {
		if _, err := rs[0].Propose(ctx, []byte{byte(i)}); err != nil {
			t.Fatalf("propose: %v", err)
		}
	}
	hub.Wait()
	mu.Lock()
	defer mu.Unlock()
	for idx, slots := range applied {
		for i := 1; i < len(slots); i++ {
			if slots[i] != slots[i-1]+1 {
				t.Fatalf("replica %d applied out of order: %v", idx+1, slots)
			}
		}
	}
	if len(applied[0]) != 20 {
		t.Fatalf("leader applied %d entries, want 20", len(applied[0]))
	}
}

func TestProposeWithoutLeadershipFails(t *testing.T) {
	_, rs := startReplicas(t, 3)
	if _, _, err := rs[1].ProposeAsync([]byte("x")); err != ErrNotLeader {
		t.Fatalf("ProposeAsync on follower: err = %v, want ErrNotLeader", err)
	}
}

func TestPreemptionStepsDownOldLeader(t *testing.T) {
	hub, rs := startReplicas(t, 3)
	campaign(t, rs[0])
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := rs[0].Propose(ctx, []byte("old")); err != nil {
		t.Fatalf("propose: %v", err)
	}
	// A second node campaigns with a higher ballot.
	campaign(t, rs[1])
	hub.Wait()
	if rs[0].IsLeader() {
		t.Fatal("old leader did not step down after preemption")
	}
	if !rs[1].IsLeader() {
		t.Fatal("new leader did not take over")
	}
	// The committed value must survive the leadership change.
	if _, err := rs[1].Propose(ctx, []byte("new")); err != nil {
		t.Fatalf("propose after takeover: %v", err)
	}
	hub.Wait()
	v, ok := rs[1].Value(1)
	if !ok || !bytes.Equal(v, []byte("old")) {
		t.Fatalf("slot 1 after takeover = %q (ok=%v), want \"old\"", v, ok)
	}
}

func TestNewLeaderAdoptsUncommittedValue(t *testing.T) {
	// Partition-style scenario: leader 1 gets an accept to only one other
	// replica (no majority beyond itself + r2 = majority in n=5? use n=5,
	// accept reaches only r2: 2 < 3 so uncommitted), then a new leader
	// campaigns including r2 and must adopt the value.
	hub := NewMemHub(5)
	var dropMu sync.Mutex
	dropAccepts := false
	hub.Drop = func(from, to int, payload []byte) bool {
		dropMu.Lock()
		defer dropMu.Unlock()
		if !dropAccepts {
			return false
		}
		// While partitioned, node 1 can only reach node 2, and node 5 is
		// cut off from node 3 — so node 3's campaign quorum must be
		// {3, 2, 4} (or {3, 2, 1}), which always includes the orphan
		// holder. A quorum without node 2 could legally lose the value.
		// Any campaign quorum for node 3 is then 3 + two of {1,2,4};
		// every such pair includes node 1 or node 2, both of which hold
		// the orphan (node 1 self-accepted it as the old leader).
		return (from == 1 && to != 2) || (from == 5 && to == 3) || (from == 3 && to == 5)
	}
	rs := make([]*Replica, 5)
	for i := 1; i <= 5; i++ {
		rs[i-1] = NewReplica(hub.Bus(i))
	}
	defer func() {
		for _, r := range rs {
			r.Close()
		}
		hub.Close()
	}()

	campaign(t, rs[0])
	hub.Wait()

	dropMu.Lock()
	dropAccepts = true
	dropMu.Unlock()

	_, done, err := rs[0].ProposeAsync([]byte("orphan"))
	if err != nil {
		t.Fatalf("propose async: %v", err)
	}
	hub.Wait() // accept reached only node 2

	// Node 3 campaigns; its majority {3,2,4} includes node 2, which holds
	// the orphan value, so the new leader must adopt and commit it.
	campaign(t, rs[2])
	hub.Wait()

	v, ok := rs[2].Value(1)
	if !ok || !bytes.Equal(v, []byte("orphan")) {
		t.Fatalf("new leader slot 1 = %q (ok=%v), want adopted \"orphan\"", v, ok)
	}
	// The old proposer's waiter must have been released with an error.
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("orphan propose reported success despite partition")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("orphan propose waiter never released")
	}
}

func TestCampaignRaceSingleWinner(t *testing.T) {
	hub, rs := startReplicas(t, 5)
	// All five campaign concurrently; afterwards exactly the
	// highest-surviving ballot's owner is leader and proposals from that
	// node commit.
	var wg sync.WaitGroup
	for _, r := range rs {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = r.Campaign(ctx) // losers may error; that's fine
		}(r)
	}
	wg.Wait()
	hub.Wait()

	leaders := 0
	var leader *Replica
	for _, r := range rs {
		if r.IsLeader() {
			leaders++
			leader = r
		}
	}
	if leaders > 1 {
		t.Fatalf("%d simultaneous leaders", leaders)
	}
	if leaders == 0 {
		// All campaigns preempted one another; rerun one deterministic
		// campaign to converge.
		leader = rs[4]
		campaign(t, leader)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := leader.Propose(ctx, []byte("final")); err != nil {
		t.Fatalf("winner propose: %v", err)
	}
}

func TestPipelinedProposals(t *testing.T) {
	hub, rs := startReplicas(t, 3)
	campaign(t, rs[0])
	const n = 200
	dones := make([]<-chan error, 0, n)
	for i := 0; i < n; i++ {
		_, done, err := rs[0].ProposeAsync([]byte{byte(i)})
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		dones = append(dones, done)
	}
	for i, d := range dones {
		select {
		case err := <-d:
			if err != nil {
				t.Fatalf("pipelined proposal %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("pipelined proposal %d timed out", i)
		}
	}
	hub.Wait()
	if got := rs[0].CommittedThrough(); got != n {
		t.Fatalf("committed through %d, want %d", got, n)
	}
}
