package paxos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by Replica.
var (
	ErrNotLeader    = errors.New("paxos: not the leader")
	ErrPreempted    = errors.New("paxos: ballot preempted by a higher one")
	ErrCampaignLost = errors.New("paxos: campaign did not reach a majority")
	ErrClosedBus    = errors.New("paxos: replica closed")
)

// ApplyFunc learns committed log entries, invoked in slot order.
type ApplyFunc func(slot uint64, value []byte)

// Replica is one Multi-Paxos node: acceptor + learner always, proposer
// after a successful Campaign.
type Replica struct {
	bus Bus
	n   int

	// discardApplied, when set, drops entry payloads once they have been
	// applied locally, bounding memory for bulk streams. The replica can
	// then no longer serve Value() for old slots or teach them to a
	// lagging new leader — enable it only when the application snapshots
	// its own state (as real PhxPaxos deployments do).
	discardApplied bool

	mu sync.Mutex

	// Acceptor state.
	promised       uint64
	log            map[uint64]slotValue // accepted entries by slot
	acceptedThru   uint64               // contiguous accepted watermark
	acceptedBallot uint64               // ballot of the watermark run
	committedThru  uint64
	appliedThru    uint64
	applyFns       []ApplyFunc

	// Proposer state.
	leader       bool
	ballot       uint64
	nextSlot     uint64
	acceptorThru map[int]uint64 // per-acceptor watermark at our ballot
	waiters      []pxWaiter
	campaign     *campaignState

	closed bool
}

type pxWaiter struct {
	slot uint64
	done chan error
}

type campaignState struct {
	ballot   uint64
	promises map[int]*promiseMsg
	done     chan error
	adopted  map[uint64]slotValue
	finished bool
}

// Option configures a Replica.
type Option func(*Replica)

// WithDiscardApplied drops entry payloads after local application (see the
// field comment for the recovery caveat).
func WithDiscardApplied() Option {
	return func(r *Replica) { r.discardApplied = true }
}

// NewReplica attaches a replica to the bus. The replica is a pure acceptor
// and learner until Campaign succeeds.
func NewReplica(bus Bus, opts ...Option) *Replica {
	r := &Replica{
		bus:          bus,
		n:            bus.N(),
		log:          make(map[uint64]slotValue),
		nextSlot:     1,
		acceptorThru: make(map[int]uint64),
	}
	for _, o := range opts {
		o(r)
	}
	bus.SetHandler(r.handle)
	return r
}

// OnApply registers a learner callback, invoked in slot order as entries
// commit.
func (r *Replica) OnApply(fn ApplyFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.applyFns = append(r.applyFns, fn)
}

// majority returns the quorum size: ⌈(n+1)/2⌉.
func (r *Replica) majority() int { return r.n/2 + 1 }

// ballotFor builds a globally unique ballot for round owned by this node.
func (r *Replica) ballotFor(round uint64) uint64 {
	return round*1024 + uint64(r.bus.Self())
}

// Campaign runs phase 1: it proposes a fresh ballot, collects a majority of
// promises, adopts the highest-ballot accepted values it learns, and
// re-proposes them. On success the replica is the leader.
func (r *Replica) Campaign(ctx context.Context) error {
	r.mu.Lock()
	round := r.promised/1024 + 1
	b := r.ballotFor(round)
	st := &campaignState{
		ballot:   b,
		promises: make(map[int]*promiseMsg),
		done:     make(chan error, 1),
		adopted:  make(map[uint64]slotValue),
	}
	r.campaign = st
	// Self-promise.
	if b > r.promised {
		r.promised = b
	}
	st.promises[r.bus.Self()] = &promiseMsg{Ballot: b, From: r.bus.Self(), Accepted: r.acceptedAboveLocked(r.committedThru)}
	commit := r.committedThru
	var (
		reproposals []*acceptMsg
		finished    bool
	)
	if len(st.promises) >= r.majority() {
		reproposals = r.finishCampaignLocked(st)
		finished = st.finished
	}
	r.mu.Unlock()
	if finished {
		r.broadcastReproposals(reproposals, st)
	}

	if err := r.bus.Broadcast(encodePrepare(&prepareMsg{Ballot: b, CommitThrough: commit})); err != nil {
		return fmt.Errorf("paxos: broadcast prepare: %w", err)
	}
	select {
	case err := <-st.done:
		return err
	case <-ctx.Done():
		r.mu.Lock()
		if r.campaign == st {
			r.campaign = nil
		}
		r.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrCampaignLost, ctx.Err())
	}
}

// IsLeader reports whether this replica currently owns a ballot.
func (r *Replica) IsLeader() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leader
}

// CommittedThrough returns the local commit watermark.
func (r *Replica) CommittedThrough() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.committedThru
}

// Propose replicates value in the next log slot and blocks until it
// commits (a majority of acceptors hold it).
func (r *Replica) Propose(ctx context.Context, value []byte) (uint64, error) {
	slot, done, err := r.ProposeAsync(value)
	if err != nil {
		return 0, err
	}
	select {
	case err := <-done:
		return slot, err
	case <-ctx.Done():
		return slot, ctx.Err()
	}
}

// ProposeAsync starts replication of value and returns its slot plus a
// completion channel — the pipelined mode PhxPaxos-style systems use for
// bulk streams.
func (r *Replica) ProposeAsync(value []byte) (uint64, <-chan error, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, nil, ErrClosedBus
	}
	if !r.leader {
		r.mu.Unlock()
		return 0, nil, ErrNotLeader
	}
	b := r.ballot
	slot := r.nextSlot
	r.nextSlot++
	// Self-accept.
	r.log[slot] = slotValue{Slot: slot, Ballot: b, Value: value}
	r.advanceAcceptedLocked(b)
	done := make(chan error, 1)
	r.waiters = append(r.waiters, pxWaiter{slot: slot, done: done})
	r.recomputeCommitLocked()
	commit := r.committedThru
	r.mu.Unlock()

	msg := encodeAccept(&acceptMsg{Ballot: b, Slot: slot, CommitThrough: commit, Value: value})
	if err := r.bus.Broadcast(msg); err != nil {
		return slot, nil, fmt.Errorf("paxos: broadcast accept: %w", err)
	}
	return slot, done, nil
}

// Value returns the committed value in slot, if any.
func (r *Replica) Value(slot uint64) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if slot > r.committedThru {
		return nil, false
	}
	sv, ok := r.log[slot]
	return sv.Value, ok
}

// Close releases waiters; the replica stops initiating traffic.
func (r *Replica) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for _, w := range r.waiters {
		w.done <- ErrClosedBus
	}
	r.waiters = nil
}

// --- message handling ---

func (r *Replica) handle(from int, payload []byte) {
	msg, err := decode(payload)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *prepareMsg:
		r.onPrepare(from, m)
	case *promiseMsg:
		r.onPromise(m)
	case *acceptMsg:
		r.onAccept(from, m)
	case *acceptedMsg:
		r.onAccepted(m)
	case *nackMsg:
		r.onNack(m)
	}
}

func (r *Replica) onPrepare(from int, m *prepareMsg) {
	r.mu.Lock()
	if m.Ballot <= r.promised {
		promised := r.promised
		r.mu.Unlock()
		_ = r.bus.Send(from, encodeNack(&nackMsg{Promised: promised, From: r.bus.Self()}))
		return
	}
	r.promised = m.Ballot
	if r.leader && m.Ballot > r.ballot {
		r.stepDownLocked()
	}
	// Promising a higher ballot preempts our own in-flight campaign: its
	// ballot can no longer win a quorum through this acceptor, and
	// finishing it anyway could seat a leader below the promised ballot.
	if st := r.campaign; st != nil && m.Ballot > st.ballot {
		r.campaign = nil
		st.done <- fmt.Errorf("%w: promised %d during campaign", ErrCampaignLost, m.Ballot)
	}
	reply := &promiseMsg{
		Ballot:   m.Ballot,
		From:     r.bus.Self(),
		Accepted: r.acceptedAboveLocked(m.CommitThrough),
	}
	r.mu.Unlock()
	_ = r.bus.Send(from, encodePromise(reply))
}

func (r *Replica) onPromise(m *promiseMsg) {
	r.mu.Lock()
	st := r.campaign
	if st == nil || m.Ballot != st.ballot {
		r.mu.Unlock()
		return
	}
	st.promises[m.From] = m
	var (
		reproposals []*acceptMsg
		finished    bool
	)
	if len(st.promises) >= r.majority() {
		reproposals = r.finishCampaignLocked(st)
		finished = st.finished
	}
	r.mu.Unlock()
	if finished {
		r.broadcastReproposals(reproposals, st)
	}
}

// broadcastReproposals streams adopted values under the new ballot and only
// then completes the campaign, so later proposals follow them on the FIFO
// links. Callers invoke it exactly once, after finishCampaignLocked
// reported success.
func (r *Replica) broadcastReproposals(reproposals []*acceptMsg, st *campaignState) {
	for _, a := range reproposals {
		_ = r.bus.Broadcast(encodeAccept(a))
	}
	st.done <- nil
}

// finishCampaignLocked adopts the highest-ballot value per slot among the
// promises and prepares their re-proposal under the new ballot, returning
// the accepts the caller must broadcast. Caller holds r.mu.
func (r *Replica) finishCampaignLocked(st *campaignState) []*acceptMsg {
	if r.promised > st.ballot {
		// Preempted between quorum completion and this call.
		r.campaign = nil
		st.done <- fmt.Errorf("%w: promised %d during campaign", ErrCampaignLost, r.promised)
		return nil
	}
	r.campaign = nil
	r.leader = true
	r.ballot = st.ballot
	st.finished = true
	r.acceptorThru = make(map[int]uint64, r.n)

	maxSlot := r.committedThru
	for _, p := range st.promises {
		for _, sv := range p.Accepted {
			cur, ok := st.adopted[sv.Slot]
			if !ok || sv.Ballot > cur.Ballot {
				st.adopted[sv.Slot] = sv
			}
			if sv.Slot > maxSlot {
				maxSlot = sv.Slot
			}
		}
	}
	if r.nextSlot <= maxSlot {
		r.nextSlot = maxSlot + 1
	}

	// Re-propose adopted values under the new ballot (and fill gaps with
	// no-ops so the log stays contiguous).
	var reproposals []*acceptMsg
	for slot := r.committedThru + 1; slot <= maxSlot; slot++ {
		sv, ok := st.adopted[slot]
		if !ok {
			if own, have := r.log[slot]; have {
				sv = own
			} else {
				sv = slotValue{Slot: slot, Value: nil} // no-op filler
			}
		}
		entry := slotValue{Slot: slot, Ballot: st.ballot, Value: sv.Value}
		r.log[slot] = entry
		reproposals = append(reproposals, &acceptMsg{
			Ballot: st.ballot,
			Slot:   slot,
			Value:  entry.Value,
		})
	}
	r.advanceAcceptedLocked(st.ballot)
	r.recomputeCommitLocked()
	for _, a := range reproposals {
		a.CommitThrough = r.committedThru
	}
	return reproposals
}

func (r *Replica) onAccept(from int, m *acceptMsg) {
	r.mu.Lock()
	if m.Ballot < r.promised {
		promised := r.promised
		r.mu.Unlock()
		_ = r.bus.Send(from, encodeNack(&nackMsg{Promised: promised, From: r.bus.Self()}))
		return
	}
	r.promised = m.Ballot
	if r.leader && m.Ballot > r.ballot {
		r.stepDownLocked()
	}
	cur, have := r.log[m.Slot]
	if !have || m.Ballot >= cur.Ballot {
		r.log[m.Slot] = slotValue{Slot: m.Slot, Ballot: m.Ballot, Value: m.Value}
	}
	r.advanceAcceptedLocked(m.Ballot)
	r.learnCommitLocked(m.CommitThrough)
	reply := &acceptedMsg{Ballot: m.Ballot, From: r.bus.Self(), Through: r.acceptedThru}
	r.mu.Unlock()
	_ = r.bus.Send(from, encodeAccepted(reply))
}

func (r *Replica) onAccepted(m *acceptedMsg) {
	r.mu.Lock()
	if !r.leader || m.Ballot != r.ballot {
		r.mu.Unlock()
		return
	}
	if m.Through > r.acceptorThru[m.From] {
		r.acceptorThru[m.From] = m.Through
		r.recomputeCommitLocked()
	}
	r.mu.Unlock()
}

func (r *Replica) onNack(m *nackMsg) {
	r.mu.Lock()
	if m.Promised > r.promised {
		r.promised = m.Promised
	}
	if r.leader && m.Promised > r.ballot {
		r.stepDownLocked()
	}
	if st := r.campaign; st != nil && m.Promised > st.ballot {
		r.campaign = nil
		st.done <- fmt.Errorf("%w: promised %d", ErrCampaignLost, m.Promised)
	}
	r.mu.Unlock()
}

// --- state machinery (all *Locked helpers assume r.mu held) ---

// acceptedAboveLocked lists accepted entries with slot > floor.
func (r *Replica) acceptedAboveLocked(floor uint64) []slotValue {
	var out []slotValue
	for slot, sv := range r.log {
		if slot > floor {
			out = append(out, sv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

// advanceAcceptedLocked extends the contiguous accepted watermark.
func (r *Replica) advanceAcceptedLocked(ballot uint64) {
	for {
		if _, ok := r.log[r.acceptedThru+1]; !ok {
			break
		}
		r.acceptedThru++
	}
	r.acceptedBallot = ballot
}

// recomputeCommitLocked derives the commit watermark from the majority of
// acceptor watermarks (leader only) and releases satisfied waiters.
func (r *Replica) recomputeCommitLocked() {
	if !r.leader {
		return
	}
	thru := make([]uint64, 0, r.n)
	thru = append(thru, r.acceptedThru) // self
	for node, t := range r.acceptorThru {
		if node == r.bus.Self() {
			continue
		}
		thru = append(thru, t)
	}
	for len(thru) < r.n {
		thru = append(thru, 0)
	}
	sort.Slice(thru, func(i, j int) bool { return thru[i] > thru[j] })
	commit := thru[r.majority()-1]
	r.learnCommitLocked(commit)
	if r.committedThru == 0 {
		return
	}
	kept := r.waiters[:0]
	for _, w := range r.waiters {
		if w.slot <= r.committedThru {
			w.done <- nil
		} else {
			kept = append(kept, w)
		}
	}
	r.waiters = kept
}

// learnCommitLocked advances the commit watermark (bounded by what is
// locally accepted) and applies newly committed entries in order.
func (r *Replica) learnCommitLocked(commit uint64) {
	if commit > r.acceptedThru {
		commit = r.acceptedThru
	}
	if commit <= r.committedThru {
		return
	}
	r.committedThru = commit
	for r.appliedThru < r.committedThru {
		r.appliedThru++
		sv := r.log[r.appliedThru]
		for _, fn := range r.applyFns {
			fn(sv.Slot, sv.Value)
		}
		if r.discardApplied {
			sv.Value = nil
			r.log[r.appliedThru] = sv
		}
	}
}

func (r *Replica) stepDownLocked() {
	r.leader = false
	for _, w := range r.waiters {
		w.done <- ErrPreempted
	}
	r.waiters = nil
}
