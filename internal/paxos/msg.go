// Package paxos implements a pipelined Multi-Paxos replicated log — the
// reproduction's baseline for the paper's PhxPaxos comparison (§VI-B).
//
// The protocol is classic: a proposer campaigns with Prepare/Promise to own
// a ballot, then streams Accept messages for consecutive log slots.
// Acceptors maintain a contiguous accepted watermark and acknowledge
// cumulatively (FIFO links make per-slot acks redundant); a slot commits
// once a majority's watermarks cover it — the topology-indifferent majority
// rule whose cost Fig. 6 compares against Stabilizer's MajorityRegions
// predicate. Commit watermarks piggyback on Accepts.
package paxos

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// message kinds.
const (
	kindPrepare uint8 = iota + 1
	kindPromise
	kindAccept
	kindAccepted
	kindNack
)

// pxMagic marks paxos payloads on a shared bus.
const pxMagic uint16 = 0x5058 // "PX"

var errBadMsg = errors.New("paxos: malformed message")

// prepareMsg opens a ballot.
type prepareMsg struct {
	Ballot uint64
	// CommitThrough lets acceptors prune their promise payloads.
	CommitThrough uint64
}

// promiseMsg answers a prepare with the acceptor's accepted suffix.
type promiseMsg struct {
	Ballot   uint64
	From     int
	Accepted []slotValue // entries above the prepare's CommitThrough
}

// slotValue is one accepted (slot, ballot, value) triple.
type slotValue struct {
	Slot   uint64
	Ballot uint64
	Value  []byte
}

// acceptMsg proposes a value for one slot and piggybacks the leader's
// commit watermark.
type acceptMsg struct {
	Ballot        uint64
	Slot          uint64
	CommitThrough uint64
	Value         []byte
}

// acceptedMsg is an acceptor's cumulative acknowledgment.
type acceptedMsg struct {
	Ballot  uint64
	From    int
	Through uint64 // contiguous accepted watermark at Ballot
}

// nackMsg rejects a stale ballot.
type nackMsg struct {
	Promised uint64
	From     int
}

func encodePrepare(m *prepareMsg) []byte {
	b := header(kindPrepare, 16)
	b = binary.BigEndian.AppendUint64(b, m.Ballot)
	return binary.BigEndian.AppendUint64(b, m.CommitThrough)
}

func encodePromise(m *promiseMsg) []byte {
	size := 8 + 2 + 4
	for _, sv := range m.Accepted {
		size += 8 + 8 + 4 + len(sv.Value)
	}
	b := header(kindPromise, size)
	b = binary.BigEndian.AppendUint64(b, m.Ballot)
	b = binary.BigEndian.AppendUint16(b, uint16(m.From))
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Accepted)))
	for _, sv := range m.Accepted {
		b = binary.BigEndian.AppendUint64(b, sv.Slot)
		b = binary.BigEndian.AppendUint64(b, sv.Ballot)
		b = binary.BigEndian.AppendUint32(b, uint32(len(sv.Value)))
		b = append(b, sv.Value...)
	}
	return b
}

func encodeAccept(m *acceptMsg) []byte {
	b := header(kindAccept, 24+len(m.Value))
	b = binary.BigEndian.AppendUint64(b, m.Ballot)
	b = binary.BigEndian.AppendUint64(b, m.Slot)
	b = binary.BigEndian.AppendUint64(b, m.CommitThrough)
	return append(b, m.Value...)
}

func encodeAccepted(m *acceptedMsg) []byte {
	b := header(kindAccepted, 8+2+8)
	b = binary.BigEndian.AppendUint64(b, m.Ballot)
	b = binary.BigEndian.AppendUint16(b, uint16(m.From))
	return binary.BigEndian.AppendUint64(b, m.Through)
}

func encodeNack(m *nackMsg) []byte {
	b := header(kindNack, 8+2)
	b = binary.BigEndian.AppendUint64(b, m.Promised)
	return binary.BigEndian.AppendUint16(b, uint16(m.From))
}

func header(kind uint8, hint int) []byte {
	b := make([]byte, 0, 3+hint)
	b = binary.BigEndian.AppendUint16(b, pxMagic)
	return append(b, kind)
}

// decode parses a paxos payload into one of the message structs.
// It returns errBadMsg for foreign payloads sharing the bus.
func decode(p []byte) (any, error) {
	if len(p) < 3 || binary.BigEndian.Uint16(p) != pxMagic {
		return nil, errBadMsg
	}
	kind := p[2]
	d := p[3:]
	switch kind {
	case kindPrepare:
		if len(d) != 16 {
			return nil, errBadMsg
		}
		return &prepareMsg{
			Ballot:        binary.BigEndian.Uint64(d),
			CommitThrough: binary.BigEndian.Uint64(d[8:]),
		}, nil
	case kindPromise:
		if len(d) < 14 {
			return nil, errBadMsg
		}
		m := &promiseMsg{
			Ballot: binary.BigEndian.Uint64(d),
			From:   int(binary.BigEndian.Uint16(d[8:])),
		}
		n := int(binary.BigEndian.Uint32(d[10:]))
		d = d[14:]
		for i := 0; i < n; i++ {
			if len(d) < 20 {
				return nil, errBadMsg
			}
			sv := slotValue{
				Slot:   binary.BigEndian.Uint64(d),
				Ballot: binary.BigEndian.Uint64(d[8:]),
			}
			vlen := int(binary.BigEndian.Uint32(d[16:]))
			d = d[20:]
			if len(d) < vlen {
				return nil, errBadMsg
			}
			sv.Value = append([]byte{}, d[:vlen]...)
			d = d[vlen:]
			m.Accepted = append(m.Accepted, sv)
		}
		if len(d) != 0 {
			return nil, errBadMsg
		}
		return m, nil
	case kindAccept:
		if len(d) < 24 {
			return nil, errBadMsg
		}
		return &acceptMsg{
			Ballot:        binary.BigEndian.Uint64(d),
			Slot:          binary.BigEndian.Uint64(d[8:]),
			CommitThrough: binary.BigEndian.Uint64(d[16:]),
			Value:         append([]byte{}, d[24:]...),
		}, nil
	case kindAccepted:
		if len(d) != 18 {
			return nil, errBadMsg
		}
		return &acceptedMsg{
			Ballot:  binary.BigEndian.Uint64(d),
			From:    int(binary.BigEndian.Uint16(d[8:])),
			Through: binary.BigEndian.Uint64(d[10:]),
		}, nil
	case kindNack:
		if len(d) != 10 {
			return nil, errBadMsg
		}
		return &nackMsg{
			Promised: binary.BigEndian.Uint64(d),
			From:     int(binary.BigEndian.Uint16(d[8:])),
		}, nil
	default:
		return nil, fmt.Errorf("%w: kind %d", errBadMsg, kind)
	}
}
