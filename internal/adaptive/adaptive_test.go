package adaptive

import (
	"errors"
	"sync"
	"testing"
	"time"

	"stabilizer/internal/metrics"
)

// fakeHost is a minimal Host: a predicate table, a settable frontier/head,
// and one latency histogram the controller samples.
type fakeHost struct {
	mu       sync.Mutex
	sources  map[string]string
	frontier uint64
	next     uint64
	hist     *metrics.Histogram
	swapErr  error
	swaps    []string
}

func newFakeHost(key, source string) *fakeHost {
	return &fakeHost{
		sources: map[string]string{key: source},
		hist:    metrics.NewHistogram(metrics.LatencyOpts),
		next:    1,
	}
}

func (f *fakeHost) ChangePredicate(key, source string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.swapErr != nil {
		return f.swapErr
	}
	f.sources[key] = source
	f.swaps = append(f.swaps, source)
	return nil
}

func (f *fakeHost) StabilityFrontier(key string) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frontier, nil
}

func (f *fakeHost) NextSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

func (f *fakeHost) StabilityLatencyHistogram(string) *metrics.Histogram {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hist
}

func (f *fakeHost) source(key string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sources[key]
}

func (f *fakeHost) set(fn func(*fakeHost)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

const (
	goodNs = 1 << 15 // well under every Target used here
	badNs  = 1 << 30 // ~1s, far past it
)

func testLadder(t *testing.T) Ladder {
	t.Helper()
	l, err := NewLadder(
		Rung{Name: "all", Source: "MIN($ALLWNODES)"},
		Rung{Name: "majority", Source: "KTH_MAX(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)"},
		Rung{Name: "one", Source: "KTH_MAX(1, $ALLWNODES)"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// testConfig: 15s ticks, short window 1m, long 2m, burn 2 at objective
// 0.75 (all-bad traffic burns at 4×), dwell 30s, cooldown 90s.
func testConfig() Config {
	return Config{
		Target:      time.Millisecond,
		Objective:   0.75,
		ShortWindow: time.Minute,
		LongWindow:  2 * time.Minute,
		Burn:        2,
		CheckEvery:  15 * time.Second,
		MinDwell:    30 * time.Second,
		Cooldown:    90 * time.Second,
		StallAfter:  45 * time.Second,
	}
}

func TestLadderValidation(t *testing.T) {
	cases := []struct {
		name  string
		rungs []Rung
		ok    bool
	}{
		{"two rungs", []Rung{{"a", "X"}, {"b", "Y"}}, true},
		{"single rung", []Rung{{"a", "X"}}, false},
		{"empty", nil, false},
		{"dup name", []Rung{{"a", "X"}, {"a", "Y"}}, false},
		{"dup source", []Rung{{"a", "X"}, {"b", "X"}}, false},
		{"empty name", []Rung{{"", "X"}, {"b", "Y"}}, false},
		{"empty source", []Rung{{"a", ""}, {"b", "Y"}}, false},
		{"name with =", []Rung{{"a=b", "X"}, {"b", "Y"}}, false},
		{"name with ;", []Rung{{"a;b", "X"}, {"b", "Y"}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewLadder(tc.rungs...)
			if (err == nil) != tc.ok {
				t.Fatalf("NewLadder(%v) err = %v, want ok=%v", tc.rungs, err, tc.ok)
			}
		})
	}
}

func TestParseLadderRoundTrip(t *testing.T) {
	l := testLadder(t)
	parsed, err := ParseLadder(l.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != l.String() {
		t.Fatalf("round trip: %q != %q", parsed.String(), l.String())
	}
	// Sources may contain '=': only the first one splits.
	eq, err := ParseLadder("a=F(x=1); b=G(y)")
	if err != nil {
		t.Fatal(err)
	}
	if got := eq.Rung(0).Source; got != "F(x=1)" {
		t.Fatalf("source with '=': got %q", got)
	}
	if _, err := ParseLadder("no-equals-here"); err == nil {
		t.Fatal("want error for a rung without '='")
	}
	if l.IndexOfSource("KTH_MAX(1, $ALLWNODES)") != 2 {
		t.Fatal("IndexOfSource missed the weakest rung")
	}
	if l.IndexOfSource("nope") != -1 {
		t.Fatal("IndexOfSource invented a rung")
	}
}

func observe(h *metrics.Histogram, v int64, n int) {
	for i := 0; i < n; i++ {
		h.Observe(v)
	}
}

// driveBurn advances the controller by `ticks` ticks of CheckEvery,
// observing n latency samples of v before each tick. Returns the time
// after the last tick.
func driveBurn(c *Controller, h *fakeHost, now time.Time, ticks int, v int64, n int) time.Time {
	for i := 0; i < ticks; i++ {
		if n > 0 {
			observe(h.hist, v, n)
		}
		c.Tick(now)
		now = now.Add(c.cfg.CheckEvery)
	}
	return now
}

func TestControllerStepsDownOnBurn(t *testing.T) {
	h := newFakeHost("stable", "MIN($ALLWNODES)")
	reg := metrics.NewRegistry()
	c, err := StartPaused(h, "stable", testLadder(t), testConfig(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	now := time.Unix(10_000, 0)
	// Healthy traffic: no movement.
	now = driveBurn(c, h, now, 8, goodNs, 50)
	if c.RungIndex() != 0 || len(c.History()) != 0 {
		t.Fatalf("moved while healthy: rung %d, %d transitions", c.RungIndex(), len(c.History()))
	}

	// All-bad traffic: burn 4× > 2 in both windows → step down.
	now = driveBurn(c, h, now, 12, badNs, 50)
	hist := c.History()
	if len(hist) == 0 {
		t.Fatal("no downgrade under a sustained burn")
	}
	if hist[0].Direction != DirectionDown || hist[0].Reason != "slo-burn" {
		t.Fatalf("first transition = %+v, want down/slo-burn", hist[0])
	}
	if c.RungIndex() != c.InstalledIndex() {
		t.Fatalf("steady state: reported %d != installed %d", c.RungIndex(), c.InstalledIndex())
	}
	if got := h.source("stable"); c.Ladder().IndexOfSource(got) != c.InstalledIndex() {
		t.Fatalf("installed source %q does not match installed index %d", got, c.InstalledIndex())
	}
	// Sustained burn walks the whole ladder but stops at the bottom.
	if c.RungIndex() != c.Ladder().Len()-1 {
		t.Fatalf("rung %d after long burn, want bottom %d", c.RungIndex(), c.Ladder().Len()-1)
	}
	// Hysteresis: consecutive transitions at least MinDwell apart.
	for i := 1; i < len(hist); i++ {
		if gap := hist[i].At.Sub(hist[i-1].At); gap < c.cfg.MinDwell {
			t.Fatalf("transitions %d and %d only %v apart (dwell %v)", i-1, i, gap, c.cfg.MinDwell)
		}
	}
	_ = now
}

func TestControllerStallStepsDownWithoutSamples(t *testing.T) {
	h := newFakeHost("stable", "MIN($ALLWNODES)")
	c, err := StartPaused(h, "stable", testLadder(t), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Appends outstanding, frontier pinned, zero histogram samples: the
	// SLO monitor is silent, the stall detector is not.
	h.set(func(f *fakeHost) { f.next = 100; f.frontier = 5 })
	now := time.Unix(20_000, 0)
	for i := 0; i < 6; i++ { // 6 ticks = 75s > StallAfter (45s)
		c.Tick(now)
		now = now.Add(c.cfg.CheckEvery)
	}
	hist := c.History()
	if len(hist) == 0 {
		t.Fatal("stalled frontier never triggered a downgrade")
	}
	if hist[0].Reason != "stall" {
		t.Fatalf("reason %q, want stall", hist[0].Reason)
	}
	// A frontier that keeps up (head close behind) must NOT read as a stall.
	h2 := newFakeHost("stable", "MIN($ALLWNODES)")
	c2, err := StartPaused(h2, "stable", testLadder(t), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	h2.set(func(f *fakeHost) { f.next = 100; f.frontier = 99 })
	now = time.Unix(30_000, 0)
	for i := 0; i < 10; i++ {
		c2.Tick(now)
		now = now.Add(c2.cfg.CheckEvery)
	}
	if len(c2.History()) != 0 {
		t.Fatal("caught-up frontier misread as a stall")
	}
}

func TestControllerRecoversAfterCooldown(t *testing.T) {
	h := newFakeHost("stable", "MIN($ALLWNODES)")
	c, err := StartPaused(h, "stable", testLadder(t), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	now := time.Unix(40_000, 0)
	now = driveBurn(c, h, now, 12, badNs, 50) // walk to the bottom
	if c.RungIndex() != 2 {
		t.Fatalf("setup: rung %d, want 2", c.RungIndex())
	}
	downs := len(c.History())

	// Healthy traffic again. Upgrades need the burn to resolve (short AND
	// long window), then Cooldown of quiet per rung.
	now = driveBurn(c, h, now, 60, goodNs, 50)
	if c.RungIndex() != 0 {
		t.Fatalf("rung %d after a long healthy stretch, want 0", c.RungIndex())
	}
	hist := c.History()
	ups := hist[downs:]
	if len(ups) != 2 {
		t.Fatalf("%d upgrades, want 2 (one per rung)", len(ups))
	}
	for _, tr := range ups {
		if tr.Direction != DirectionUp || tr.Reason != "recovered" {
			t.Fatalf("upgrade transition %+v", tr)
		}
	}
	// One cooldown per rung: successive upgrades at least Cooldown apart.
	if gap := ups[1].At.Sub(ups[0].At); gap < c.cfg.Cooldown {
		t.Fatalf("upgrades %v apart, want ≥ cooldown %v", gap, c.cfg.Cooldown)
	}
}

func TestControllerHonestyAcrossSwapFailure(t *testing.T) {
	h := newFakeHost("stable", "MIN($ALLWNODES)")
	c, err := StartPaused(h, "stable", testLadder(t), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	boom := errors.New("registry sealed")
	h.set(func(f *fakeHost) { f.swapErr = boom })
	now := time.Unix(50_000, 0)
	now = driveBurn(c, h, now, 8, badNs, 50)

	// The swap keeps failing: no transition recorded, but the *report*
	// must already be the weaker rung — under-claiming, never over.
	if len(c.History()) != 0 {
		t.Fatal("recorded a transition for a failed swap")
	}
	if c.InstalledIndex() != 0 {
		t.Fatalf("installed index %d moved despite swap failures", c.InstalledIndex())
	}
	if c.RungIndex() < c.InstalledIndex() {
		t.Fatalf("reported %d stronger than installed %d", c.RungIndex(), c.InstalledIndex())
	}
	if c.RungIndex() != 1 {
		t.Fatalf("reported rung %d, want the weaker claim 1", c.RungIndex())
	}

	// Heal the registry: the next burning tick completes the swap.
	h.set(func(f *fakeHost) { f.swapErr = nil })
	driveBurn(c, h, now, 2, badNs, 50)
	if c.InstalledIndex() < 1 {
		t.Fatalf("swap not retried after the registry healed: installed %d", c.InstalledIndex())
	}
	if c.RungIndex() < c.InstalledIndex() {
		t.Fatalf("reported %d stronger than installed %d after retry", c.RungIndex(), c.InstalledIndex())
	}
}

func TestControllerOnTransitionCancel(t *testing.T) {
	h := newFakeHost("stable", "MIN($ALLWNODES)")
	c, err := StartPaused(h, "stable", testLadder(t), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var mu sync.Mutex
	var got []Transition
	cancel := c.OnTransition(func(tr Transition) {
		mu.Lock()
		got = append(got, tr)
		mu.Unlock()
	})
	if nilCancel := c.OnTransition(nil); nilCancel == nil {
		t.Fatal("nil hook returned a nil cancel")
	}

	now := driveBurn(c, h, time.Unix(60_000, 0), 8, badNs, 50)
	mu.Lock()
	seen := len(got)
	mu.Unlock()
	if seen == 0 {
		t.Fatal("hook never fired")
	}
	cancel()
	cancel() // double-cancel is fine
	// Recovery produces further transitions (upgrades) — the controller
	// keeps moving, only the canceled hook goes quiet.
	histAtCancel := len(c.History())
	driveBurn(c, h, now, 60, goodNs, 50)
	mu.Lock()
	after := len(got)
	mu.Unlock()
	if after != seen {
		t.Fatalf("hook fired %d more times after cancel", after-seen)
	}
	if len(c.History()) <= histAtCancel {
		t.Fatal("controller stopped transitioning after hook cancel")
	}
}

func TestControllerCloseIsIdempotentAndStopsTicks(t *testing.T) {
	h := newFakeHost("stable", "MIN($ALLWNODES)")
	c, err := StartPaused(h, "stable", testLadder(t), testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
	driveBurn(c, h, time.Unix(70_000, 0), 8, badNs, 50)
	if len(c.History()) != 0 {
		t.Fatal("transitioned after Close")
	}

	// Background form: Start must come up and tear down cleanly.
	h2 := newFakeHost("stable", "MIN($ALLWNODES)")
	cfg := testConfig()
	cfg.CheckEvery = time.Millisecond
	bg, err := Start(h2, "stable", testLadder(t), cfg, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	bg.Close()
	bg.Close()
}

func TestConfigValidation(t *testing.T) {
	h := newFakeHost("k", "MIN($ALLWNODES)")
	l := testLadder(t)
	if _, err := StartPaused(h, "k", l, Config{}, nil); err == nil {
		t.Fatal("zero Target accepted")
	}
	if _, err := StartPaused(h, "k", l, Config{Target: time.Millisecond, Objective: 1.5}, nil); err == nil {
		t.Fatal("objective out of range accepted")
	}
	if _, err := StartPaused(h, "", l, Config{Target: time.Millisecond}, nil); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := StartPaused(nil, "k", l, Config{Target: time.Millisecond}, nil); err == nil {
		t.Fatal("nil host accepted")
	}
	if _, err := StartPaused(h, "k", Ladder{}, Config{Target: time.Millisecond}, nil); err == nil {
		t.Fatal("zero ladder accepted")
	}
	c, err := StartPaused(h, "k", l, Config{Target: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.cfg.MinDwell != c.cfg.ShortWindow || c.cfg.Cooldown != c.cfg.LongWindow {
		t.Fatalf("defaults: dwell %v cooldown %v", c.cfg.MinDwell, c.cfg.Cooldown)
	}
}
