// Package adaptive closes the loop the paper's §VI-D operators close by
// hand: when the stability-latency SLO for a predicate starts burning error
// budget, step the active predicate *down* a user-supplied ladder of
// progressively weaker rungs; when the burn stops and stays stopped, step
// back *up* — with enough hysteresis (a minimum dwell per rung, a cooldown
// of quiet before any upgrade) that the controller never flaps on the
// timescale of a single latency spike.
//
// The controller is deliberately honest about what it promises. The rung it
// *reports* (RungIndex, the stabilizer_adaptive_rung gauge) is never
// stronger than the predicate actually installed in the frontier registry:
// on a downgrade the report moves first and the swap second, on an upgrade
// the swap moves first and the report second. A caller that reads the rung
// and then waits on the frontier can therefore trust the weaker of the two
// views — under-claiming is safe, over-claiming never happens. Chaos
// invariant 10 checks exactly this ordering under fault schedules.
//
// Burn detection alone has a blind spot this package has to cover: the
// stability-latency histogram only gains samples when the frontier
// *advances*. A full stall — partitioned quorum, frontier pinned — produces
// silence, not slow samples, and silence reads as zero burn. The controller
// therefore runs its own stall detector (appended head past the frontier
// with no frontier movement for StallAfter) and treats a stall as burning.
package adaptive

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"stabilizer/internal/metrics"
)

// Rung is one step of a ladder: a human-readable name and the predicate DSL
// source the controller installs when this rung is active.
type Rung struct {
	// Name labels the rung in transitions, metrics and traces ("all",
	// "majority", ...). Names must be unique within a ladder.
	Name string
	// Source is the predicate DSL for this rung, e.g. "MIN($ALLWNODES)".
	// Sources must be unique within a ladder — the guarantee-honesty check
	// maps installed source back to rung index, which needs the mapping to
	// be injective.
	Source string
}

// Ladder is an ordered, validated sequence of rungs from strongest (index
// 0) to weakest (index Len()-1). The zero Ladder is invalid; build one with
// NewLadder or ParseLadder. Ladders are immutable after construction.
type Ladder struct {
	rungs []Rung
}

// NewLadder validates and builds a ladder. It needs at least two rungs
// (one rung has nothing to adapt between), non-empty names and sources,
// and no duplicate names or sources. DSL validity is checked at
// registration time by the node's existing compile path, not here — the
// ladder is pure data.
func NewLadder(rungs ...Rung) (Ladder, error) {
	if len(rungs) < 2 {
		return Ladder{}, fmt.Errorf("adaptive: ladder needs at least 2 rungs, got %d", len(rungs))
	}
	names := make(map[string]bool, len(rungs))
	sources := make(map[string]bool, len(rungs))
	for i, r := range rungs {
		if r.Name == "" {
			return Ladder{}, fmt.Errorf("adaptive: rung %d has an empty name", i)
		}
		if strings.ContainsAny(r.Name, "=;") {
			return Ladder{}, fmt.Errorf("adaptive: rung name %q may not contain '=' or ';'", r.Name)
		}
		if r.Source == "" {
			return Ladder{}, fmt.Errorf("adaptive: rung %q has an empty source", r.Name)
		}
		if names[r.Name] {
			return Ladder{}, fmt.Errorf("adaptive: duplicate rung name %q", r.Name)
		}
		if sources[r.Source] {
			return Ladder{}, fmt.Errorf("adaptive: duplicate rung source %q (rung %q)", r.Source, r.Name)
		}
		names[r.Name] = true
		sources[r.Source] = true
	}
	return Ladder{rungs: append([]Rung(nil), rungs...)}, nil
}

// ParseLadder builds a ladder from the CLI form
// "name=SOURCE;name=SOURCE;..." — strongest rung first. Sources may
// contain '=' (the split is on the first one); ';' is the rung separator
// and cannot appear inside a source.
func ParseLadder(s string) (Ladder, error) {
	var rungs []Rung
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, src, ok := strings.Cut(part, "=")
		if !ok {
			return Ladder{}, fmt.Errorf("adaptive: rung %q: want name=SOURCE", part)
		}
		rungs = append(rungs, Rung{Name: strings.TrimSpace(name), Source: strings.TrimSpace(src)})
	}
	return NewLadder(rungs...)
}

// Len returns the number of rungs.
func (l Ladder) Len() int { return len(l.rungs) }

// Rung returns rung i; it panics when i is out of range, matching slice
// semantics.
func (l Ladder) Rung(i int) Rung { return l.rungs[i] }

// Rungs returns a copy of the rungs, strongest first.
func (l Ladder) Rungs() []Rung { return append([]Rung(nil), l.rungs...) }

// IndexOfSource returns the index of the rung with the given predicate
// source, or -1 when no rung uses it. Sources are unique per ladder, so
// the answer is well-defined; the honesty checker uses it to map the
// installed predicate back to a rung.
func (l Ladder) IndexOfSource(source string) int {
	for i, r := range l.rungs {
		if r.Source == source {
			return i
		}
	}
	return -1
}

// String renders the ladder in ParseLadder form.
func (l Ladder) String() string {
	parts := make([]string, len(l.rungs))
	for i, r := range l.rungs {
		parts[i] = r.Name + "=" + r.Source
	}
	return strings.Join(parts, ";")
}

// Direction says which way a transition moved.
type Direction string

const (
	// DirectionDown is a downgrade toward a weaker rung (higher index).
	DirectionDown Direction = "down"
	// DirectionUp is an upgrade toward a stronger rung (lower index).
	DirectionUp Direction = "up"
)

// Transition is one controller step recorded in the history and delivered
// to OnTransition hooks.
type Transition struct {
	// Predicate is the frontier key the controller drives.
	Predicate string
	// From and To are rung indexes; FromRung/ToRung the matching rungs.
	From, To         int
	FromRung, ToRung Rung
	// Direction is "down" (weaker) or "up" (stronger).
	Direction Direction
	// At is the controller tick time of the transition.
	At time.Time
	// Reason is why: "slo-burn", "stall", or "recovered".
	Reason string
	// ShortBurn and LongBurn are the burn rates at the deciding tick.
	ShortBurn, LongBurn float64
}

// Config tunes one controller. The zero value is invalid: Target is
// required. Everything else has a sensible default.
type Config struct {
	// Target is the stability-latency SLO: Objective of appends should
	// stabilize within Target. Required, > 0.
	Target time.Duration
	// Objective is the good fraction in (0,1). Default 0.99.
	Objective float64
	// ShortWindow and LongWindow are the multiwindow burn lookbacks
	// (metrics.SLOConfig semantics). Defaults 1m and 10m.
	ShortWindow, LongWindow time.Duration
	// Burn is the burn-rate multiple both windows must exceed before the
	// SLO counts as burning. Default 10.
	Burn float64
	// CheckEvery is the controller tick interval. Default ShortWindow/4.
	CheckEvery time.Duration
	// MinDwell is the minimum time between transitions: once the
	// controller moves, it stays on the new rung at least this long in
	// either direction. Default ShortWindow.
	MinDwell time.Duration
	// Cooldown is how long the SLO must be continuously quiet (no burn,
	// no stall) before an upgrade. Each upgrade restarts the clock, so a
	// ladder is re-climbed one cooldown per rung — deliberately slow.
	// Default LongWindow.
	Cooldown time.Duration
	// StallAfter bounds the burn detector's blind spot: when appends have
	// happened past the frontier and the frontier has not moved for this
	// long, the controller treats the predicate as burning even though
	// the histogram is silent. Default ShortWindow.
	StallAfter time.Duration
	// OnTransition, when set, is called after every transition (from the
	// controller goroutine or the Tick caller). Keep it fast or hand off.
	OnTransition func(Transition)
}

func (c Config) normalized() (Config, error) {
	if c.Target <= 0 {
		return c, fmt.Errorf("adaptive: Config.Target must be > 0")
	}
	if c.Objective == 0 {
		c.Objective = 0.99
	}
	if !(c.Objective > 0 && c.Objective < 1) {
		return c, fmt.Errorf("adaptive: Config.Objective must be in (0,1)")
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = time.Minute
	}
	if c.LongWindow <= 0 {
		c.LongWindow = 10 * time.Minute
	}
	if c.LongWindow < c.ShortWindow {
		return c, fmt.Errorf("adaptive: Config.LongWindow < ShortWindow")
	}
	if c.Burn <= 0 {
		c.Burn = 10
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = c.ShortWindow / 4
	}
	if c.MinDwell <= 0 {
		c.MinDwell = c.ShortWindow
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.LongWindow
	}
	if c.StallAfter <= 0 {
		c.StallAfter = c.ShortWindow
	}
	return c, nil
}

// Host is the slice of a node the controller drives. *core.Node satisfies
// it; tests use fakes.
type Host interface {
	// ChangePredicate swaps the predicate registered under key.
	ChangePredicate(key, source string) error
	// StabilityFrontier returns the current frontier for key.
	StabilityFrontier(key string) (uint64, error)
	// NextSeq returns the next unused local sequence number; NextSeq()-1
	// is the highest appended seq, which the stall detector compares to
	// the frontier.
	NextSeq() uint64
	// StabilityLatencyHistogram returns the stability-latency histogram
	// for key. Re-resolved every tick, so vec-child re-binds are seen.
	StabilityLatencyHistogram(key string) *metrics.Histogram
}

// maxHistory bounds the in-memory transition history per controller.
const maxHistory = 256

// Controller runs the closed loop for one predicate key. Create one with
// Start (background goroutine on the wall clock) or StartPaused (the
// caller drives Tick — what core uses under a virtual timescale and what
// the unit tests use for determinism).
type Controller struct {
	host   Host
	key    string
	ladder Ladder
	cfg    Config
	mon    *metrics.SLOMonitor

	rungGauge *metrics.Gauge
	transDown *metrics.Counter
	transUp   *metrics.Counter
	swapErrs  *metrics.Counter

	mu        sync.Mutex
	installed int // rung actually swapped into the registry
	reported  int // rung we claim; invariant: reported >= installed (weaker or equal)
	history   []Transition
	hooks     map[int]func(Transition)
	nextHook  int

	lastChange    time.Time // last transition (hysteresis dwell anchor)
	quietSince    time.Time // start of the current no-burn-no-stall run
	lastFrontier  uint64
	frontierMoved time.Time // last time the frontier was seen to move
	seeded        bool      // first tick has primed the time anchors

	stop chan struct{}
	done chan struct{}
}

// Start launches a controller with a background goroutine ticking
// cfg.CheckEvery on the wall clock. The ladder's rung 0 predicate must
// already be registered under key (core.Node.StartAdaptive does this).
// reg, when non-nil, receives the controller metric families.
func Start(host Host, key string, ladder Ladder, cfg Config, reg *metrics.Registry) (*Controller, error) {
	c, err := StartPaused(host, key, ladder, cfg, reg)
	if err != nil {
		return nil, err
	}
	c.done = make(chan struct{})
	go c.run()
	return c, nil
}

// StartPaused builds a controller without the background goroutine: the
// caller drives it by calling Tick with its own clock. Deterministic tests
// and virtual-time harnesses use this form.
func StartPaused(host Host, key string, ladder Ladder, cfg Config, reg *metrics.Registry) (*Controller, error) {
	if host == nil {
		return nil, fmt.Errorf("adaptive: nil host")
	}
	if key == "" {
		return nil, fmt.Errorf("adaptive: empty predicate key")
	}
	if ladder.Len() < 2 {
		return nil, fmt.Errorf("adaptive: ladder is empty or unvalidated; build it with NewLadder")
	}
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	c := &Controller{
		host:   host,
		key:    key,
		ladder: ladder,
		cfg:    cfg,
		hooks:  map[int]func(Transition){},
		stop:   make(chan struct{}),
	}
	if fn := cfg.OnTransition; fn != nil {
		c.hooks[c.nextHook] = fn
		c.nextHook++
	}
	c.mon, err = metrics.NewSLOMonitorPaused(nil, metrics.SLOConfig{
		Name:        key,
		Threshold:   cfg.Target.Nanoseconds(),
		Objective:   cfg.Objective,
		ShortWindow: cfg.ShortWindow,
		LongWindow:  cfg.LongWindow,
		Burn:        cfg.Burn,
		Source:      func() *metrics.Histogram { return host.StabilityLatencyHistogram(key) },
	})
	if err != nil {
		return nil, err
	}
	if reg != nil {
		c.rungGauge = reg.GaugeVec("stabilizer_adaptive_rung",
			"Reported ladder rung index for an adaptive predicate (0 = strongest).",
			"predicate").With(key)
		tv := reg.CounterVec("stabilizer_adaptive_transitions_total",
			"Adaptive controller rung transitions by direction.",
			"predicate", "direction")
		c.transDown = tv.With(key, string(DirectionDown))
		c.transUp = tv.With(key, string(DirectionUp))
		c.swapErrs = reg.CounterVec("stabilizer_adaptive_swap_errors_total",
			"Predicate swaps the adaptive controller attempted that failed.",
			"predicate").With(key)
		c.rungGauge.Set(0)
	}
	return c, nil
}

func (c *Controller) run() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.CheckEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.Tick(now)
		}
	}
}

// Close stops the controller. The active predicate stays on whatever rung
// was installed last — Close freezes the loop, it does not restore rung 0.
// Safe to call more than once and concurrently with Tick.
func (c *Controller) Close() {
	c.mu.Lock()
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	done := c.done
	c.mu.Unlock()
	if done != nil {
		<-done
	}
	c.mon.Close()
}

// Key returns the predicate key the controller drives.
func (c *Controller) Key() string { return c.key }

// Ladder returns the controller's ladder.
func (c *Controller) Ladder() Ladder { return c.ladder }

// RungIndex returns the index of the rung the controller currently
// *reports* — the guarantee it claims to callers. By the honesty ordering
// it is never stronger (never a lower index) than the installed rung.
func (c *Controller) RungIndex() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reported
}

// Rung returns the reported rung.
func (c *Controller) Rung() Rung { return c.ladder.Rung(c.RungIndex()) }

// InstalledIndex returns the index of the rung whose predicate is actually
// installed in the registry. It can be momentarily stronger than the
// reported rung mid-transition, never weaker.
func (c *Controller) InstalledIndex() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.installed
}

// History returns a copy of the recorded transitions, oldest first,
// bounded to the most recent 256.
func (c *Controller) History() []Transition {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Transition(nil), c.history...)
}

// OnTransition registers a hook called after every transition and returns
// a cancel func that detaches it. A nil fn is ignored (the cancel is still
// non-nil and harmless).
func (c *Controller) OnTransition(fn func(Transition)) (cancel func()) {
	if fn == nil {
		return func() {}
	}
	c.mu.Lock()
	id := c.nextHook
	c.nextHook++
	c.hooks[id] = fn
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		delete(c.hooks, id)
		c.mu.Unlock()
	}
}

// Firing reports whether the underlying SLO monitor currently considers
// the burn alert active.
func (c *Controller) Firing() bool { return c.mon.Firing() }

// Tick runs one controller evaluation at now: sample the SLO, update the
// stall detector, and take at most one ladder step. The background
// goroutine calls it every CheckEvery; paused controllers are driven by
// the caller. A tick after Close is a no-op.
func (c *Controller) Tick(now time.Time) {
	shortBurn, longBurn := c.mon.Tick(now)
	burning := c.mon.Firing()

	c.mu.Lock()
	select {
	case <-c.stop:
		c.mu.Unlock()
		return
	default:
	}

	// Stall detection: the histogram only sees frontier advances, so a
	// pinned frontier with appends outstanding is burning even at zero
	// sample volume.
	frontier, ferr := c.host.StabilityFrontier(c.key)
	head := c.host.NextSeq() // next unused; head-1 is the last appended
	if !c.seeded {
		c.seeded = true
		c.lastFrontier = frontier
		c.frontierMoved = now
		c.lastChange = now.Add(-c.cfg.MinDwell) // first step needs no dwell
		c.quietSince = now
	}
	if frontier != c.lastFrontier {
		c.lastFrontier = frontier
		c.frontierMoved = now
	}
	stalled := ferr == nil && head > frontier+1 &&
		now.Sub(c.frontierMoved) >= c.cfg.StallAfter

	reason := ""
	switch {
	case burning:
		reason = "slo-burn"
	case stalled:
		reason = "stall"
	}
	bad := burning || stalled
	if bad {
		c.quietSince = time.Time{}
	} else if c.quietSince.IsZero() {
		c.quietSince = now
	}

	dwellOK := now.Sub(c.lastChange) >= c.cfg.MinDwell
	var tr *Transition
	switch {
	case bad && dwellOK && c.installed < c.ladder.Len()-1:
		tr = c.stepLocked(c.installed+1, DirectionDown, reason, now, shortBurn, longBurn)
	case !bad && dwellOK && c.installed > 0 &&
		!c.quietSince.IsZero() && now.Sub(c.quietSince) >= c.cfg.Cooldown:
		tr = c.stepLocked(c.installed-1, DirectionUp, "recovered", now, shortBurn, longBurn)
		if tr != nil {
			// Each upgrade restarts the quiet clock: climbing the whole
			// ladder takes one cooldown per rung.
			c.quietSince = now
		}
	}
	var hooks []func(Transition)
	if tr != nil {
		for _, fn := range c.hooks {
			hooks = append(hooks, fn)
		}
	}
	c.mu.Unlock()

	if tr != nil {
		for _, fn := range hooks {
			fn(*tr)
		}
	}
}

// stepLocked moves the controller to rung `to`, preserving the honesty
// ordering: the reported rung is weakened before the swap on the way down
// and strengthened only after the swap on the way up, so the report is
// never stronger than the installed predicate. Called with c.mu held;
// returns nil when the swap fails (the loop retries next tick).
func (c *Controller) stepLocked(to int, dir Direction, reason string, now time.Time, shortBurn, longBurn float64) *Transition {
	from := c.installed
	if dir == DirectionDown {
		c.reported = to
		if c.rungGauge != nil {
			c.rungGauge.Set(int64(to))
		}
	}
	if err := c.host.ChangePredicate(c.key, c.ladder.Rung(to).Source); err != nil {
		if c.swapErrs != nil {
			c.swapErrs.Inc()
		}
		// On a failed downgrade the weaker report stands while the stronger
		// predicate stays installed — merely conservative, never dishonest —
		// and the next tick retries the swap (lastChange was not advanced,
		// so the dwell gate stays open).
		return nil
	}
	c.installed = to
	if dir == DirectionUp {
		c.reported = to
		if c.rungGauge != nil {
			c.rungGauge.Set(int64(to))
		}
	}
	switch dir {
	case DirectionDown:
		if c.transDown != nil {
			c.transDown.Inc()
		}
	case DirectionUp:
		if c.transUp != nil {
			c.transUp.Inc()
		}
	}
	c.lastChange = now
	tr := Transition{
		Predicate: c.key,
		From:      from,
		To:        to,
		FromRung:  c.ladder.Rung(from),
		ToRung:    c.ladder.Rung(to),
		Direction: dir,
		At:        now,
		Reason:    reason,
		ShortBurn: shortBurn,
		LongBurn:  longBurn,
	}
	c.history = append(c.history, tr)
	if len(c.history) > maxHistory {
		c.history = append(c.history[:0], c.history[len(c.history)-maxHistory:]...)
	}
	return &tr
}

// SortTransitions orders transitions by time, stable on equal timestamps.
// Chaos checkers use it to replay multi-hook observations in order.
func SortTransitions(ts []Transition) {
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].At.Before(ts[j].At) })
}
