package config

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"
)

func validTopo() *Topology {
	return &Topology{
		Self: 1,
		Nodes: []Node{
			{Name: "A", AZ: "az1", Region: "west"},
			{Name: "B", AZ: "az1", Region: "west"},
			{Name: "C", AZ: "az2", Region: "east"},
			{Name: "D", AZ: "az3", Region: "east"},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := validTopo().Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Topology)
		want   error
	}{
		{"no nodes", func(tp *Topology) { tp.Nodes = nil }, ErrNoNodes},
		{"self zero", func(tp *Topology) { tp.Self = 0 }, ErrSelfRange},
		{"self too big", func(tp *Topology) { tp.Self = 9 }, ErrSelfRange},
		{"dup name", func(tp *Topology) { tp.Nodes[1].Name = "A" }, nil},
		{"bad name", func(tp *Topology) { tp.Nodes[0].Name = "has space" }, nil},
		{"bad az", func(tp *Topology) { tp.Nodes[0].AZ = "-x" }, nil},
		{"bad region", func(tp *Topology) { tp.Nodes[0].Region = "9bad!" }, nil},
	}
	for _, c := range cases {
		tp := validTopo()
		c.mutate(tp)
		err := tp.Validate()
		if err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
			continue
		}
		if c.want != nil && !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestLookups(t *testing.T) {
	tp := validTopo()
	if idx, err := tp.IndexOf("C"); err != nil || idx != 3 {
		t.Fatalf("IndexOf(C) = %d, %v", idx, err)
	}
	if _, err := tp.IndexOf("Z"); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("IndexOf(Z) err = %v", err)
	}
	if n, err := tp.NodeAt(2); err != nil || n.Name != "B" {
		t.Fatalf("NodeAt(2) = %v, %v", n, err)
	}
	if _, err := tp.NodeAt(5); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("NodeAt(5) err = %v", err)
	}
	if got := tp.AllIndexes(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("AllIndexes = %v", got)
	}
}

func TestAZIndexesWithRegionFallback(t *testing.T) {
	tp := validTopo()
	if got, err := tp.AZIndexes("az1"); err != nil || !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("AZIndexes(az1) = %v, %v", got, err)
	}
	// "east" is a region, not an AZ: the fallback should find it.
	if got, err := tp.AZIndexes("east"); err != nil || !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("AZIndexes(east) = %v, %v", got, err)
	}
	if _, err := tp.AZIndexes("nowhere"); !errors.Is(err, ErrAZNotFound) {
		t.Fatalf("AZIndexes(nowhere) err = %v", err)
	}
}

func TestMyAZAndRegion(t *testing.T) {
	tp := validTopo()
	if got := tp.MyAZIndexes(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("MyAZIndexes = %v", got)
	}
	tp.Self = 3
	if got := tp.MyRegionIndexes(); !reflect.DeepEqual(got, []int{3, 4}) {
		t.Fatalf("MyRegionIndexes = %v", got)
	}
	// Without a region, fall back to the AZ.
	tp2 := &Topology{Self: 1, Nodes: []Node{{Name: "X", AZ: "z"}, {Name: "Y", AZ: "z"}}}
	if got := tp2.MyRegionIndexes(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("MyRegionIndexes (no region) = %v", got)
	}
}

func TestRegions(t *testing.T) {
	tp := validTopo()
	if got := tp.Regions(); !reflect.DeepEqual(got, []string{"west", "east"}) {
		t.Fatalf("Regions = %v", got)
	}
}

func TestWithSelfAndClone(t *testing.T) {
	tp := validTopo()
	tp2 := tp.WithSelf(3)
	if tp2.Self != 3 || tp.Self != 1 {
		t.Fatalf("WithSelf mutated original or failed: %d / %d", tp.Self, tp2.Self)
	}
	tp2.Nodes[0].Name = "Changed"
	if tp.Nodes[0].Name != "A" {
		t.Fatal("Clone shares node slice with original")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tp := validTopo()
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := tp.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(tp, got) {
		t.Fatalf("round trip mismatch:\nsaved  %+v\nloaded %+v", tp, got)
	}
}

func TestParseRejectsBadJSONAndBadTopology(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Parse([]byte(`{"nodes":[],"self":0}`)); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestCanonicalTopologies(t *testing.T) {
	ec2 := EC2Topology(1)
	if err := ec2.Validate(); err != nil {
		t.Fatalf("EC2 topology invalid: %v", err)
	}
	if ec2.N() != 8 {
		t.Fatalf("EC2 topology has %d nodes, want 8", ec2.N())
	}
	if got := ec2.Regions(); len(got) != 4 {
		t.Fatalf("EC2 regions = %v, want 4", got)
	}
	nv, err := ec2.AZIndexes("North_Virginia")
	if err != nil || !reflect.DeepEqual(nv, []int{3, 4, 5, 6}) {
		t.Fatalf("North_Virginia nodes = %v, %v", nv, err)
	}

	cl := CloudLabTopology(1)
	if err := cl.Validate(); err != nil {
		t.Fatalf("CloudLab topology invalid: %v", err)
	}
	if cl.N() != 5 {
		t.Fatalf("CloudLab topology has %d nodes, want 5", cl.N())
	}
	utah := cl.MyAZIndexes()
	if !reflect.DeepEqual(utah, []int{1, 2}) {
		t.Fatalf("Utah AZ = %v, want [1 2]", utah)
	}
}

func TestSortedAZs(t *testing.T) {
	tp := validTopo()
	if got := tp.SortedAZs(); !reflect.DeepEqual(got, []string{"az1", "az2", "az3"}) {
		t.Fatalf("SortedAZs = %v", got)
	}
}
