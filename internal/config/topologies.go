package config

// Canonical experiment topologies from the paper's evaluation (§VI).

// EC2Topology returns the paper's Fig. 2 topology: eight WAN nodes in four
// AWS regions. Node 1 (NCal_A) is the sender in the paper's experiments.
//
//	Region1 North_California: nodes 1, 2
//	Region2 North_Virginia:   nodes 3, 4, 5, 6
//	Region3 Oregon:           node 7
//	Region4 Ohio:             node 8
//
// Each node is its own availability zone; region names carry the grouping
// that the paper's Table III predicates address via $AZ_<region>.
func EC2Topology(self int) *Topology {
	return &Topology{
		Self: self,
		Nodes: []Node{
			{Name: "NCal_A", AZ: "NCal_AZ1", Region: "North_California"},
			{Name: "NCal_B", AZ: "NCal_AZ2", Region: "North_California"},
			{Name: "NVir_A", AZ: "NVir_AZ1", Region: "North_Virginia"},
			{Name: "NVir_B", AZ: "NVir_AZ2", Region: "North_Virginia"},
			{Name: "NVir_C", AZ: "NVir_AZ3", Region: "North_Virginia"},
			{Name: "NVir_D", AZ: "NVir_AZ4", Region: "North_Virginia"},
			{Name: "Oregon_A", AZ: "Oregon_AZ1", Region: "Oregon"},
			{Name: "Ohio_A", AZ: "Ohio_AZ1", Region: "Ohio"},
		},
	}
}

// CloudLabTopology returns the paper's Table II real-WAN setup: five
// CloudLab servers, with Utah1 (the sender in the experiments) and Utah2
// sharing the Utah cluster.
func CloudLabTopology(self int) *Topology {
	return &Topology{
		Self: self,
		Nodes: []Node{
			{Name: "Utah1", AZ: "Utah", Region: "Utah"},
			{Name: "Utah2", AZ: "Utah", Region: "Utah"},
			{Name: "Wisconsin", AZ: "Wisconsin", Region: "Wisconsin"},
			{Name: "Clemson", AZ: "Clemson", Region: "Clemson"},
			{Name: "Massachusetts", AZ: "Massachusetts", Region: "Massachusetts"},
		},
	}
}
