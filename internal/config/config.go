// Package config describes the WAN topology a Stabilizer deployment runs on:
// the ordered list of WAN nodes, their availability zones and regions, and
// the identity of the local node.
//
// The configuration is the ground truth the DSL resolves its operands
// against: node indexes ($1, $2, ...), availability zones ($AZ_name,
// $MYAZWNODES) and the full node list ($ALLWNODES) all come from here. Data
// centers have unique names; Stabilizer maps them to 1-based indexes by
// their rank in the configured node list, exactly as the paper describes.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// Node describes one WAN node (one data center) in the deployment.
type Node struct {
	// Name is the unique data-center name, e.g. "Foo". Names must match
	// [A-Za-z][A-Za-z0-9_]* so that they can be referenced from the DSL
	// as $WNODE_Foo.
	Name string `json:"name"`
	// AZ is the availability-zone name the node belongs to, referenced
	// from the DSL as $AZ_<name>.
	AZ string `json:"az"`
	// Region is the (coarser) region name. The DSL's $AZ_<name> operand
	// falls back to region names when no availability zone matches,
	// which is how the paper's Table III predicates address whole
	// regions (e.g. $AZ_North_Virginia).
	Region string `json:"region,omitempty"`
	// Addr is the transport address ("host:port"). Empty for in-memory
	// deployments.
	Addr string `json:"addr,omitempty"`
}

// Topology is the full WAN deployment: an ordered node list plus the local
// node's position in it. Node indexes used by the DSL are 1-based ranks in
// Nodes.
type Topology struct {
	// Nodes is the ordered list of WAN nodes. Order is significant: the
	// 1-based position of a node in this slice is its DSL index.
	Nodes []Node `json:"nodes"`
	// Self is the 1-based index of the local node.
	Self int `json:"self"`
}

var nameRE = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9_]*$`)

// Errors returned by Validate and the lookup helpers.
var (
	ErrNoNodes      = errors.New("config: topology has no nodes")
	ErrSelfRange    = errors.New("config: self index out of range")
	ErrNodeNotFound = errors.New("config: node not found")
	ErrAZNotFound   = errors.New("config: availability zone not found")
)

// Validate checks structural invariants: at least one node, a valid self
// index, unique well-formed node names, and well-formed AZ/region names.
func (t *Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return ErrNoNodes
	}
	if t.Self < 1 || t.Self > len(t.Nodes) {
		return fmt.Errorf("%w: self=%d with %d nodes", ErrSelfRange, t.Self, len(t.Nodes))
	}
	seen := make(map[string]int, len(t.Nodes))
	for i, n := range t.Nodes {
		if !nameRE.MatchString(n.Name) {
			return fmt.Errorf("config: node %d has malformed name %q", i+1, n.Name)
		}
		if !nameRE.MatchString(n.AZ) {
			return fmt.Errorf("config: node %q has malformed az %q", n.Name, n.AZ)
		}
		if n.Region != "" && !nameRE.MatchString(n.Region) {
			return fmt.Errorf("config: node %q has malformed region %q", n.Name, n.Region)
		}
		if prev, dup := seen[n.Name]; dup {
			return fmt.Errorf("config: duplicate node name %q at indexes %d and %d", n.Name, prev, i+1)
		}
		seen[n.Name] = i + 1
	}
	return nil
}

// N returns the number of WAN nodes.
func (t *Topology) N() int { return len(t.Nodes) }

// SelfNode returns the local node's description.
func (t *Topology) SelfNode() Node { return t.Nodes[t.Self-1] }

// NodeAt returns the node with the given 1-based index.
func (t *Topology) NodeAt(idx int) (Node, error) {
	if idx < 1 || idx > len(t.Nodes) {
		return Node{}, fmt.Errorf("%w: index %d with %d nodes", ErrNodeNotFound, idx, len(t.Nodes))
	}
	return t.Nodes[idx-1], nil
}

// IndexOf returns the 1-based index of the node with the given name.
func (t *Topology) IndexOf(name string) (int, error) {
	for i, n := range t.Nodes {
		if n.Name == name {
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrNodeNotFound, name)
}

// AllIndexes returns the 1-based indexes of every node, ascending.
func (t *Topology) AllIndexes() []int {
	out := make([]int, len(t.Nodes))
	for i := range t.Nodes {
		out[i] = i + 1
	}
	return out
}

// AZIndexes returns the indexes of every node whose availability zone equals
// name. If no availability zone matches, it falls back to matching region
// names, so region-granularity predicates like the paper's
// $AZ_North_Virginia resolve naturally.
func (t *Topology) AZIndexes(name string) ([]int, error) {
	var out []int
	for i, n := range t.Nodes {
		if n.AZ == name {
			out = append(out, i+1)
		}
	}
	if len(out) > 0 {
		return out, nil
	}
	for i, n := range t.Nodes {
		if n.Region == name {
			out = append(out, i+1)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrAZNotFound, name)
	}
	return out, nil
}

// MyAZIndexes returns the indexes of every node sharing the local node's
// availability zone, including the local node itself ($MYAZWNODES).
func (t *Topology) MyAZIndexes() []int {
	self := t.SelfNode()
	var out []int
	for i, n := range t.Nodes {
		if n.AZ == self.AZ {
			out = append(out, i+1)
		}
	}
	return out
}

// MyRegionIndexes returns the indexes of every node sharing the local node's
// region (falling back to AZ when regions are not configured).
func (t *Topology) MyRegionIndexes() []int {
	self := t.SelfNode()
	if self.Region == "" {
		return t.MyAZIndexes()
	}
	var out []int
	for i, n := range t.Nodes {
		if n.Region == self.Region {
			out = append(out, i+1)
		}
	}
	return out
}

// Regions returns the distinct region names in first-appearance order.
// Nodes without a region contribute their AZ instead.
func (t *Topology) Regions() []string {
	var out []string
	seen := make(map[string]bool)
	for _, n := range t.Nodes {
		r := n.Region
		if r == "" {
			r = n.AZ
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// Clone returns a deep copy of the topology.
func (t *Topology) Clone() *Topology {
	nodes := make([]Node, len(t.Nodes))
	copy(nodes, t.Nodes)
	return &Topology{Nodes: nodes, Self: t.Self}
}

// WithSelf returns a copy of the topology with the local node set to the
// given 1-based index. Useful when instantiating one process per node from a
// shared deployment description.
func (t *Topology) WithSelf(idx int) *Topology {
	c := t.Clone()
	c.Self = idx
	return c
}

// Load reads a topology from a JSON file and validates it.
func Load(path string) (*Topology, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: read %s: %w", path, err)
	}
	return Parse(raw)
}

// Parse decodes a topology from JSON and validates it.
func Parse(raw []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("config: parse: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Save writes the topology to a JSON file.
func (t *Topology) Save(path string) error {
	raw, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("config: marshal: %w", err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("config: write %s: %w", path, err)
	}
	return nil
}

// SortedAZs returns the distinct availability-zone names, sorted.
func (t *Topology) SortedAZs() []string {
	set := make(map[string]bool)
	for _, n := range t.Nodes {
		set[n.AZ] = true
	}
	out := make([]string, 0, len(set))
	for az := range set {
		out = append(out, az)
	}
	sort.Strings(out)
	return out
}
