package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReaderTail fuzzes the recovery path that every crash depends on: a
// segment of intact records truncated at an arbitrary offset with arbitrary
// bytes appended (a torn tail plus stale disk blocks). The invariant is the
// one crash recovery relies on: every record wholly contained in the
// untouched prefix is recovered byte-identical and in order. Bytes at or
// past the cut are untrusted — CRC32 is not cryptographic, so a fuzzer may
// legitimately forge a valid-looking trailing record — but recovery must
// never error, and must never lose or reorder the intact prefix.
func FuzzReaderTail(f *testing.F) {
	f.Add([]byte("hello"), []byte("world"), []byte{0xde, 0xad}, uint16(0))
	f.Add([]byte{}, []byte("x"), []byte{}, uint16(3))
	f.Add(bytes.Repeat([]byte{7}, 300), []byte("tail"), []byte{0, 0, 0, 0, 0, 0, 0, 9}, uint16(1))
	f.Add([]byte("a"), []byte("bb"), []byte{0xff, 0xff, 0xff, 0xff}, uint16(9))

	f.Fuzz(func(t *testing.T, a, b, tail []byte, cut uint16) {
		dir := t.TempDir()
		path := filepath.Join(dir, "seg.log")
		w, err := OpenWriter(path, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(a); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		n := int(cut) % (len(raw) + 1)
		mut := append(append([]byte(nil), raw[:n]...), tail...)
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}

		// Records wholly before the cut are untouched and must survive.
		want := [][]byte{a, b}
		intact := 0
		end := int64(0)
		for _, body := range want {
			end += FrameSize(len(body))
			if end <= int64(n) {
				intact++
			}
		}

		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile on mutated segment: %v", err)
		}
		if len(got) < intact {
			t.Fatalf("recovered %d records, want at least the %d intact ones (cut=%d)", len(got), intact, n)
		}
		for i := 0; i < intact; i++ {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("intact record %d = %q, want %q (cut=%d)", i, got[i], want[i], n)
			}
		}
		// Anything recovered past the intact prefix must at least be
		// physically possible: its body was framed inside the mutated file.
		for i := intact; i < len(got); i++ {
			if int64(len(got[i])) > int64(len(mut)) {
				t.Fatalf("recovered impossible %d-byte record from a %d-byte file", len(got[i]), len(mut))
			}
		}
	})
}
