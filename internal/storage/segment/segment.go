// Package segment implements the CRC-framed, append-only record file shared
// by every on-disk log in the system: the kvstore write-ahead log and the
// transport send-log spill tier both sit on it, so fsync discipline, framing,
// and torn-tail recovery live in exactly one place.
//
// Record layout (identical to the original kvstore WAL, so files written
// before the extraction stay readable):
//
//	uint32  crc32 (IEEE) of everything after this field
//	uint32  body length
//	[]byte  body (opaque to this package)
//
// Recovery semantics: a reader returns every intact record and stops cleanly
// at the first torn or corrupt one — a partial header, a partial body, a CRC
// mismatch, or an implausible length all terminate the scan without error,
// mirroring standard WAL tail-recovery.
package segment

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// ErrWrite wraps every error from appending to a segment, so callers can
// distinguish "the disk failed" from bad-input errors without matching on
// platform-specific causes. The original cause stays in the chain for
// errors.Is (e.g. syscall.ENOSPC).
var ErrWrite = errors.New("segment: write failed")

// maxBody rejects implausible record lengths during recovery: anything past
// 1 GiB is treated as a corrupt header, terminating the scan.
const maxBody = 1 << 30

// headerSize is the fixed per-record framing overhead (crc32 + length).
const headerSize = 8

// FrameSize returns the on-disk size of a record with the given body length.
func FrameSize(bodyLen int) int64 { return int64(headerSize + bodyLen) }

// Writer appends CRC-framed records to one segment file. Writes are buffered;
// Sync (or syncEveryWrite) makes them durable. Safe for concurrent use.
type Writer struct {
	mu   sync.Mutex
	f    *os.File
	bw   *bufio.Writer
	sync bool
	size int64
	// fault, when non-nil, makes every append fail with it (wrapped in
	// ErrWrite) before touching the file — the disk-full fault hook.
	fault error
}

// OpenWriter opens (creating if needed) the segment at path for appending.
// If syncEveryWrite is set, each record is fsynced — the durable flavor of
// "persisted". The returned writer's Size starts at the file's current
// length, so appending to an existing segment accounts correctly.
func OpenWriter(path string, syncEveryWrite bool) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("segment: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("segment: stat: %w", err)
	}
	return &Writer{f: f, bw: bufio.NewWriterSize(f, 64<<10), sync: syncEveryWrite, size: st.Size()}, nil
}

// Append frames body with a length prefix and CRC and appends it. The body
// is opaque; callers own its encoding. Returns the error wrapped in ErrWrite
// on any failure.
func (w *Writer) Append(body []byte) error {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(body)))
	crc := crc32.NewIEEE()
	_, _ = crc.Write(hdr[4:])
	_, _ = crc.Write(body)
	binary.BigEndian.PutUint32(hdr[:4], crc.Sum32())

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fault != nil {
		return fmt.Errorf("%w: %w", ErrWrite, w.fault)
	}
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("%w: %w", ErrWrite, err)
	}
	if _, err := w.bw.Write(body); err != nil {
		return fmt.Errorf("%w: %w", ErrWrite, err)
	}
	w.size += FrameSize(len(body))
	if w.sync {
		if err := w.bw.Flush(); err != nil {
			return fmt.Errorf("%w: %w", ErrWrite, err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("%w: %w", ErrWrite, err)
		}
	}
	return nil
}

// SetWriteFault makes every subsequent append fail with cause (wrapped in
// ErrWrite) without touching the file — the fault-injection hook for
// disk-full and similar persistent write failures. nil clears the fault.
func (w *Writer) SetWriteFault(cause error) {
	w.mu.Lock()
	w.fault = cause
	w.mu.Unlock()
}

// Size returns the framed bytes appended so far (including any pre-existing
// file content), whether or not they have been flushed.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Flush forces buffered records to the OS.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("%w: %w", ErrWrite, err)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file: on return every
// appended record is durable.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("%w: %w", ErrWrite, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("%w: %w", ErrWrite, err)
	}
	return nil
}

// Close flushes and closes the segment.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader streams intact record bodies from one segment file in append order.
// It is a sequential cursor: Next returns io.EOF at the end of the intact
// prefix — a clean end of file and a torn or corrupt tail look the same, by
// design (recovery keeps what the CRC vouches for and ignores the rest).
type Reader struct {
	f  *os.File
	br *bufio.Reader
}

// OpenReader opens the segment at path for sequential reading.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: open for read: %w", err)
	}
	return &Reader{f: f, br: bufio.NewReaderSize(f, 64<<10)}, nil
}

// Next returns the next intact record body, or io.EOF at the end of the
// intact prefix (clean EOF, torn tail, or corrupt record). The returned
// slice is freshly allocated and owned by the caller.
func (r *Reader) Next() ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return nil, io.EOF // clean EOF or torn header
	}
	want := binary.BigEndian.Uint32(hdr[:4])
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > maxBody {
		return nil, io.EOF // implausible length: corrupt header
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r.br, body); err != nil {
		return nil, io.EOF // torn body
	}
	crc := crc32.NewIEEE()
	_, _ = crc.Write(hdr[4:])
	_, _ = crc.Write(body)
	if crc.Sum32() != want {
		return nil, io.EOF // corrupt record
	}
	return body, nil
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// ReadFile returns every intact record body in the segment at path, stopping
// cleanly at the first torn or corrupt record. A missing file yields no
// records and no error (an empty log is a valid log).
func ReadFile(path string) ([][]byte, error) {
	var out [][]byte
	err := Scan(path, func(body []byte) error {
		out = append(out, body)
		return nil
	})
	return out, err
}

// Scan streams every intact record body in the segment at path through fn,
// stopping cleanly at the first torn or corrupt record. fn's error aborts
// the scan and is returned. A missing file is an empty log.
func Scan(path string, fn func(body []byte) error) error {
	r, err := OpenReader(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	defer r.Close()
	for {
		body, err := r.Next()
		if err != nil {
			return nil // end of intact prefix
		}
		if err := fn(body); err != nil {
			return err
		}
	}
}
