package segment

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeRecords(t *testing.T, path string, bodies [][]byte) {
	t.Helper()
	w, err := OpenWriter(path, false)
	if err != nil {
		t.Fatalf("OpenWriter: %v", err)
	}
	for _, b := range bodies {
		if err := w.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.log")
	bodies := [][]byte{[]byte("alpha"), {}, []byte("gamma with a longer body")}
	writeRecords(t, path, bodies)

	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got) != len(bodies) {
		t.Fatalf("recovered %d records, want %d", len(got), len(bodies))
	}
	for i := range bodies {
		if !bytes.Equal(got[i], bodies[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], bodies[i])
		}
	}
}

func TestMissingFileIsEmptyLog(t *testing.T) {
	got, err := ReadFile(filepath.Join(t.TempDir(), "nope.log"))
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadFile(missing) = %v records, err %v; want 0, nil", len(got), err)
	}
}

func TestTornTailStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	bodies := [][]byte{[]byte("one"), []byte("two"), []byte("three")}

	full := filepath.Join(dir, "full.log")
	writeRecords(t, full, bodies)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate at every possible byte boundary: recovery must return a
	// prefix of the written records, never an error, never garbage.
	for cut := 0; cut < len(raw); cut++ {
		p := filepath.Join(dir, fmt.Sprintf("cut%d.log", cut))
		if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(p)
		if err != nil {
			t.Fatalf("cut=%d: ReadFile error: %v", cut, err)
		}
		if len(got) > len(bodies) {
			t.Fatalf("cut=%d: recovered %d > written %d", cut, len(got), len(bodies))
		}
		for i := range got {
			if !bytes.Equal(got[i], bodies[i]) {
				t.Fatalf("cut=%d: record %d = %q, want %q", cut, i, got[i], bodies[i])
			}
		}
	}
}

func TestCorruptTailStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	bodies := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	full := filepath.Join(dir, "full.log")
	writeRecords(t, full, bodies)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte at every offset. Recovery must return an intact prefix
	// (corruption in record i loses records >= i, never fabricates data).
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xff
		p := filepath.Join(dir, "mut.log")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(p)
		if err != nil {
			t.Fatalf("off=%d: ReadFile error: %v", off, err)
		}
		for i := range got {
			if !bytes.Equal(got[i], bodies[i]) {
				t.Fatalf("off=%d: record %d = %q, want intact prefix %q", off, i, got[i], bodies[i])
			}
		}
	}
}

func TestWriteFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.log")
	w, err := OpenWriter(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("no space left on device")
	w.SetWriteFault(cause)
	err = w.Append([]byte("during"))
	if !errors.Is(err, ErrWrite) || !errors.Is(err, cause) {
		t.Fatalf("faulted Append = %v; want ErrWrite wrapping cause", err)
	}
	w.SetWriteFault(nil)
	if err := w.Append([]byte("after")); err != nil {
		t.Fatalf("Append after clearing fault: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil || len(got) != 2 {
		t.Fatalf("recovered %d records, err %v; want 2 (faulted append untracked)", len(got), err)
	}
	if string(got[0]) != "before" || string(got[1]) != "after" {
		t.Fatalf("recovered %q, %q", got[0], got[1])
	}
}

func TestWriterSizeAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.log")
	w, err := OpenWriter(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if got, want := w.Size(), FrameSize(100); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: size continues from the file, and appends land after the
	// existing records.
	w2, err := OpenWriter(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w2.Size(), FrameSize(100); got != want {
		t.Fatalf("reopened Size = %d, want %d", got, want)
	}
	if err := w2.Append(make([]byte, 7)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil || len(got) != 2 {
		t.Fatalf("recovered %d records, err %v; want 2", len(got), err)
	}
	if len(got[0]) != 100 || len(got[1]) != 7 {
		t.Fatalf("record lengths %d, %d; want 100, 7", len(got[0]), len(got[1]))
	}
}

func TestReaderSequential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.log")
	var bodies [][]byte
	for i := 0; i < 50; i++ {
		bodies = append(bodies, bytes.Repeat([]byte{byte(i)}, i))
	}
	writeRecords(t, path, bodies)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; ; i++ {
		body, err := r.Next()
		if err == io.EOF {
			if i != len(bodies) {
				t.Fatalf("EOF after %d records, want %d", i, len(bodies))
			}
			return
		}
		if !bytes.Equal(body, bodies[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}
