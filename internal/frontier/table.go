package frontier

import (
	"sync"

	"stabilizer/internal/dsl"
)

// Table is the message ACK recorder (paper Fig. 1): for every
// (WAN node, stability type) it keeps the highest acknowledged sequence
// number. Control information is monotonic — a newer value overwrites an
// older one, and stale updates are ignored — which is what lets the data
// plane coalesce and batch stability reports freely.
//
// Table implements dsl.Source.
type Table struct {
	n  int
	mu sync.RWMutex
	// rows maps a stability-type id to a per-node counter slice
	// (slot i holds node i+1's counter).
	rows map[uint16][]uint64
}

var _ dsl.Source = (*Table)(nil)

// NewTable creates a recorder for n WAN nodes.
func NewTable(n int) *Table {
	return &Table{n: n, rows: make(map[uint16][]uint64)}
}

// N returns the number of WAN nodes tracked.
func (t *Table) N() int { return t.n }

// Update records that node has acknowledged stability typ up to seq.
// It returns true when the counter advanced (stale and duplicate reports
// return false). Out-of-range nodes are ignored.
func (t *Table) Update(node int, typ uint16, seq uint64) bool {
	if node < 1 || node > t.n {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[typ]
	if row == nil {
		row = make([]uint64, t.n)
		t.rows[typ] = row
	}
	if seq <= row[node-1] {
		return false
	}
	row[node-1] = seq
	return true
}

// UpdateAll advances every existing stability-type row for node to at least
// seq, reporting whether any counter moved. It implements the paper's
// completeness rule: all stability properties hold trivially at the node
// that originated a message, so the origin's own counters advance the
// moment a sequence number is assigned.
func (t *Table) UpdateAll(node int, seq uint64) bool {
	if node < 1 || node > t.n {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	advanced := false
	for _, row := range t.rows {
		if row[node-1] < seq {
			row[node-1] = seq
			advanced = true
		}
	}
	return advanced
}

// EnsureType materializes the row for typ (zero-initialized) so that
// UpdateAll covers it, and pre-sets node's own counter to seq.
func (t *Table) EnsureType(typ uint16, node int, seq uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[typ]
	if row == nil {
		row = make([]uint64, t.n)
		t.rows[typ] = row
	}
	if node >= 1 && node <= t.n && row[node-1] < seq {
		row[node-1] = seq
	}
}

// Value implements dsl.Source: the highest sequence node has acknowledged
// for typ, or zero if nothing was recorded.
func (t *Table) Value(node int, typ uint16) uint64 {
	if node < 1 || node > t.n {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	row := t.rows[typ]
	if row == nil {
		return 0
	}
	return row[node-1]
}

// Snapshot returns a deep copy of the table, keyed by type id.
func (t *Table) Snapshot() map[uint16][]uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[uint16][]uint64, len(t.rows))
	for typ, row := range t.rows {
		cp := make([]uint64, len(row))
		copy(cp, row)
		out[typ] = cp
	}
	return out
}

// Restore overwrites the table from a snapshot (primary restart, §III-E).
// Rows sized differently from the table are ignored.
func (t *Table) Restore(snap map[uint16][]uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for typ, row := range snap {
		if len(row) != t.n {
			continue
		}
		cp := make([]uint64, len(row))
		copy(cp, row)
		t.rows[typ] = cp
	}
}

// EvalLocked evaluates prog under a single read lock, avoiding per-load
// locking on the critical path.
func (t *Table) EvalLocked(prog *dsl.Program) uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return prog.Eval(unlockedView{t})
}

// unlockedView reads the table without taking locks; only valid while the
// caller holds t.mu.
type unlockedView struct{ t *Table }

var _ dsl.Source = unlockedView{}

// Value implements dsl.Source.
func (v unlockedView) Value(node int, typ uint16) uint64 {
	if node < 1 || node > v.t.n {
		return 0
	}
	row := v.t.rows[typ]
	if row == nil {
		return 0
	}
	return row[node-1]
}
