package frontier

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"stabilizer/internal/dsl"
	"stabilizer/internal/metrics"
)

// MonitorFunc receives the most recent stability frontier of a predicate
// each time it advances. Because control information is monotonic,
// intermediate values may be skipped: an upcall with frontier 91 implies
// the stability of every earlier message (paper §III-A).
type MonitorFunc func(frontier uint64)

// Registry stores compiled predicates keyed by name and drives their
// re-evaluation as the ACK recorder advances. It implements the paper's
// three control-plane interfaces (§III-D): waitfor,
// monitor_stability_frontier, and register/change_predicate.
type Registry struct {
	env   dsl.Env
	table *Table

	mu    sync.Mutex
	preds map[string]*predicate

	// Instrumentation (optional; see EnableMetrics / OnAdvance).
	recomputes   *metrics.Counter
	monitorFires *metrics.Counter
	waiters      *metrics.Gauge
	frontiers    *metrics.GaugeVec
	// onAdvance is copy-on-write: OnAdvance swaps in a fresh slice under
	// mu, so a snapshot taken under mu stays safe to iterate after unlock.
	onAdvance []func(key string, old, new uint64)
}

type predicate struct {
	key      string
	prog     *dsl.Program
	frontier uint64

	monitors  map[int]MonitorFunc
	nextMonID int
	waiters   []waiter
}

type waiter struct {
	seq  uint64
	done chan struct{}
}

// NewRegistry creates a predicate registry evaluating against table and
// resolving predicate sources against env.
func NewRegistry(env dsl.Env, table *Table) *Registry {
	return &Registry{env: env, table: table, preds: make(map[string]*predicate)}
}

// EnableMetrics publishes the registry's control-plane instrumentation into
// m: recompute count, monitor fires, pending waiters and a per-predicate
// frontier gauge. Call before Register; not safe to call concurrently with
// use.
func (r *Registry) EnableMetrics(m *metrics.Registry) {
	r.recomputes = m.Counter("stabilizer_frontier_recomputes_total",
		"Predicate re-evaluation passes over the ACK recorder.")
	r.monitorFires = m.Counter("stabilizer_frontier_monitor_fires_total",
		"Stability-frontier monitor callbacks invoked.")
	r.waiters = m.Gauge("stabilizer_frontier_waiters",
		"WaitFor callers currently blocked on a predicate.")
	r.frontiers = m.GaugeVec("stabilizer_frontier_seq",
		"Last computed stability frontier per predicate.", "predicate")
}

// OnAdvance adds a hook invoked with (key, old, new) after a predicate's
// frontier moves forward — outside the registry lock, before waiters are
// released, so latency samples exist by the time WaitFor returns. The core
// uses it to record stability latency; invariant checkers use it to watch
// monotonicity. Hooks run in registration order and accumulate. Safe to
// call on a live registry.
func (r *Registry) OnAdvance(fn func(key string, old, new uint64)) {
	r.mu.Lock()
	hooks := make([]func(string, uint64, uint64), len(r.onAdvance), len(r.onAdvance)+1)
	copy(hooks, r.onAdvance)
	r.onAdvance = append(hooks, fn)
	r.mu.Unlock()
}

// setFrontierGauge mirrors a predicate's frontier into its gauge.
func (r *Registry) setFrontierGauge(key string, f uint64) {
	if r.frontiers != nil {
		r.frontiers.With(key).Set(int64(f))
	}
}

// addWaiters shifts the pending-waiter gauge by delta.
func (r *Registry) addWaiters(delta int) {
	if r.waiters != nil && delta != 0 {
		r.waiters.Add(int64(delta))
	}
}

// WaiterCount returns the number of WaitFor callers currently blocked.
func (r *Registry) WaiterCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, p := range r.preds {
		n += len(p.waiters)
	}
	return n
}

// Register compiles source and installs it under key. Registering an
// existing key fails; use Change to swap a predicate at runtime.
func (r *Registry) Register(key, source string) error {
	prog, err := dsl.Compile(source, r.env)
	if err != nil {
		return fmt.Errorf("register predicate %q: %w", key, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.preds[key]; dup {
		return fmt.Errorf("%w: %q", ErrPredExists, key)
	}
	p := &predicate{
		key:      key,
		prog:     prog,
		frontier: r.table.EvalLocked(prog),
		monitors: make(map[int]MonitorFunc),
	}
	r.preds[key] = p
	r.setFrontierGauge(key, p.frontier)
	return nil
}

// Change swaps the predicate under key for a newly compiled source, at
// runtime (paper §III-D / §VI-D dynamic reconfiguration). The frontier is
// re-evaluated immediately; note that switching to a stronger predicate can
// move the frontier backwards — the paper leaves handling that gap to the
// application, and so do we. Pending waiters stay queued and are judged
// against the new predicate.
func (r *Registry) Change(key, source string) error {
	prog, err := dsl.Compile(source, r.env)
	if err != nil {
		return fmt.Errorf("change predicate %q: %w", key, err)
	}
	r.mu.Lock()
	p, ok := r.preds[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	old := p.frontier
	p.prog = prog
	p.frontier = r.table.EvalLocked(prog)
	newF := p.frontier
	released := p.releaseWaitersLocked()
	hooks := r.onAdvance
	// A swap to a weaker predicate can advance the frontier immediately;
	// monitors must hear about it just like a Recompute advance, or state
	// keyed to the frontier (send-log reclaim, most importantly) would wait
	// for an ACK that may never come — e.g. the degraded-mode fallback that
	// swaps reclaim to a majority predicate precisely because the full set
	// has stopped acking.
	var fns []MonitorFunc
	if newF > old && len(p.monitors) > 0 {
		fns = make([]MonitorFunc, 0, len(p.monitors))
		for _, fn := range p.monitors {
			fns = append(fns, fn)
		}
	}
	r.mu.Unlock()
	r.setFrontierGauge(key, newF)
	if newF > old {
		for _, fn := range hooks {
			fn(key, old, newF)
		}
	}
	r.addWaiters(-len(released))
	releaseAll(released)
	for _, fn := range fns {
		fn(newF)
	}
	if len(fns) > 0 && r.monitorFires != nil {
		r.monitorFires.Add(int64(len(fns)))
	}
	return nil
}

// Remove deletes the predicate under key. Pending waiters are released
// with no error — callers that need stricter semantics should not remove
// predicates with active waiters.
func (r *Registry) Remove(key string) error {
	r.mu.Lock()
	p, ok := r.preds[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	delete(r.preds, key)
	var released []chan struct{}
	for _, w := range p.waiters {
		released = append(released, w.done)
	}
	p.waiters = nil
	r.mu.Unlock()
	if r.frontiers != nil {
		r.frontiers.Delete(key)
	}
	r.addWaiters(-len(released))
	releaseAll(released)
	return nil
}

// Has reports whether key is registered.
func (r *Registry) Has(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.preds[key]
	return ok
}

// Keys returns the registered predicate keys, sorted.
func (r *Registry) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.preds))
	for k := range r.preds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Source returns the DSL source of the predicate under key.
func (r *Registry) Source(key string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.prog.Source(), nil
}

// DependsOn returns the WAN nodes the predicate under key reads.
func (r *Registry) DependsOn(key string) ([]int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.prog.DependsOn(), nil
}

// Cells returns the recorder-table cells the predicate under key reads,
// in first-load order. Stall blame attribution compares each dependent
// peer's cell value against the stalled frontier.
func (r *Registry) Cells(key string) ([]dsl.Cell, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.prog.Cells(), nil
}

// Frontier returns the last computed stability frontier of key.
func (r *Registry) Frontier(key string) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.frontier, nil
}

// WaitFor blocks until the stability frontier of key reaches seq, the
// context is cancelled, or the predicate is removed.
func (r *Registry) WaitFor(ctx context.Context, seq uint64, key string) error {
	r.mu.Lock()
	p, ok := r.preds[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	if p.frontier >= seq {
		r.mu.Unlock()
		return nil
	}
	w := waiter{seq: seq, done: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	r.mu.Unlock()
	r.addWaiters(1)

	select {
	case <-w.done:
		return nil
	case <-ctx.Done():
		r.detachWaiter(key, w.done)
		// The frontier may have advanced concurrently with cancellation;
		// prefer success if the wait actually completed.
		select {
		case <-w.done:
			return nil
		default:
		}
		return fmt.Errorf("%w: predicate %q seq %d: %v", ErrWaitCancelled, key, seq, ctx.Err())
	}
}

func (r *Registry) detachWaiter(key string, done chan struct{}) {
	r.mu.Lock()
	p, ok := r.preds[key]
	if ok {
		for i, w := range p.waiters {
			if w.done == done {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				r.mu.Unlock()
				r.addWaiters(-1)
				return
			}
		}
	}
	r.mu.Unlock()
}

// Monitor registers fn to run each time key's frontier advances, and
// returns a cancel function. fn runs on the recompute path; keep it short
// or hand off to a goroutine.
func (r *Registry) Monitor(key string, fn MonitorFunc) (cancel func(), err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	id := p.nextMonID
	p.nextMonID++
	p.monitors[id] = fn
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if p2, ok := r.preds[key]; ok {
			delete(p2.monitors, id)
		}
	}, nil
}

// Recompute re-evaluates every predicate against the current ACK recorder
// state, releases satisfied waiters, and fires monitors for predicates
// whose frontier advanced. It is called by the node's control-plane loop
// after each batch of ACK updates.
func (r *Registry) Recompute() {
	type firing struct {
		fns      []MonitorFunc
		frontier uint64
	}
	type advance struct {
		key      string
		old, new uint64
	}
	var (
		released []chan struct{}
		firings  []firing
		advances []advance
	)
	r.mu.Lock()
	hooks := r.onAdvance
	for _, p := range r.preds {
		f := r.table.EvalLocked(p.prog)
		if f <= p.frontier {
			continue
		}
		advances = append(advances, advance{key: p.key, old: p.frontier, new: f})
		p.frontier = f
		released = append(released, p.releaseWaitersLocked()...)
		if len(p.monitors) > 0 {
			fns := make([]MonitorFunc, 0, len(p.monitors))
			for _, fn := range p.monitors {
				fns = append(fns, fn)
			}
			firings = append(firings, firing{fns: fns, frontier: f})
		}
	}
	r.mu.Unlock()

	if r.recomputes != nil {
		r.recomputes.Inc()
	}
	// The advance hook runs before waiters are released so observers (the
	// core's stability-latency samples) are recorded by the time a WaitFor
	// caller resumes.
	for _, a := range advances {
		r.setFrontierGauge(a.key, a.new)
		for _, fn := range hooks {
			fn(a.key, a.old, a.new)
		}
	}
	r.addWaiters(-len(released))
	releaseAll(released)
	for _, f := range firings {
		for _, fn := range f.fns {
			fn(f.frontier)
		}
		if r.monitorFires != nil {
			r.monitorFires.Add(int64(len(f.fns)))
		}
	}
}

// releaseWaitersLocked removes and returns the done channels of waiters
// satisfied by the current frontier. Caller holds r.mu.
func (p *predicate) releaseWaitersLocked() []chan struct{} {
	if len(p.waiters) == 0 {
		return nil
	}
	var released []chan struct{}
	kept := p.waiters[:0]
	for _, w := range p.waiters {
		if w.seq <= p.frontier {
			released = append(released, w.done)
		} else {
			kept = append(kept, w)
		}
	}
	p.waiters = kept
	return released
}

func releaseAll(chans []chan struct{}) {
	for _, c := range chans {
		close(c)
	}
}
