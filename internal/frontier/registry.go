package frontier

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"stabilizer/internal/dsl"
)

// MonitorFunc receives the most recent stability frontier of a predicate
// each time it advances. Because control information is monotonic,
// intermediate values may be skipped: an upcall with frontier 91 implies
// the stability of every earlier message (paper §III-A).
type MonitorFunc func(frontier uint64)

// Registry stores compiled predicates keyed by name and drives their
// re-evaluation as the ACK recorder advances. It implements the paper's
// three control-plane interfaces (§III-D): waitfor,
// monitor_stability_frontier, and register/change_predicate.
type Registry struct {
	env   dsl.Env
	table *Table

	mu    sync.Mutex
	preds map[string]*predicate
}

type predicate struct {
	key      string
	prog     *dsl.Program
	frontier uint64

	monitors  map[int]MonitorFunc
	nextMonID int
	waiters   []waiter
}

type waiter struct {
	seq  uint64
	done chan struct{}
}

// NewRegistry creates a predicate registry evaluating against table and
// resolving predicate sources against env.
func NewRegistry(env dsl.Env, table *Table) *Registry {
	return &Registry{env: env, table: table, preds: make(map[string]*predicate)}
}

// Register compiles source and installs it under key. Registering an
// existing key fails; use Change to swap a predicate at runtime.
func (r *Registry) Register(key, source string) error {
	prog, err := dsl.Compile(source, r.env)
	if err != nil {
		return fmt.Errorf("register predicate %q: %w", key, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.preds[key]; dup {
		return fmt.Errorf("%w: %q", ErrPredExists, key)
	}
	r.preds[key] = &predicate{
		key:      key,
		prog:     prog,
		frontier: r.table.EvalLocked(prog),
		monitors: make(map[int]MonitorFunc),
	}
	return nil
}

// Change swaps the predicate under key for a newly compiled source, at
// runtime (paper §III-D / §VI-D dynamic reconfiguration). The frontier is
// re-evaluated immediately; note that switching to a stronger predicate can
// move the frontier backwards — the paper leaves handling that gap to the
// application, and so do we. Pending waiters stay queued and are judged
// against the new predicate.
func (r *Registry) Change(key, source string) error {
	prog, err := dsl.Compile(source, r.env)
	if err != nil {
		return fmt.Errorf("change predicate %q: %w", key, err)
	}
	r.mu.Lock()
	p, ok := r.preds[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	p.prog = prog
	p.frontier = r.table.EvalLocked(prog)
	released := p.releaseWaitersLocked()
	r.mu.Unlock()
	releaseAll(released)
	return nil
}

// Remove deletes the predicate under key. Pending waiters are released
// with no error — callers that need stricter semantics should not remove
// predicates with active waiters.
func (r *Registry) Remove(key string) error {
	r.mu.Lock()
	p, ok := r.preds[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	delete(r.preds, key)
	var released []chan struct{}
	for _, w := range p.waiters {
		released = append(released, w.done)
	}
	p.waiters = nil
	r.mu.Unlock()
	releaseAll(released)
	return nil
}

// Has reports whether key is registered.
func (r *Registry) Has(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.preds[key]
	return ok
}

// Keys returns the registered predicate keys, sorted.
func (r *Registry) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.preds))
	for k := range r.preds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Source returns the DSL source of the predicate under key.
func (r *Registry) Source(key string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.prog.Source(), nil
}

// DependsOn returns the WAN nodes the predicate under key reads.
func (r *Registry) DependsOn(key string) ([]int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.prog.DependsOn(), nil
}

// Frontier returns the last computed stability frontier of key.
func (r *Registry) Frontier(key string) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.frontier, nil
}

// WaitFor blocks until the stability frontier of key reaches seq, the
// context is cancelled, or the predicate is removed.
func (r *Registry) WaitFor(ctx context.Context, seq uint64, key string) error {
	r.mu.Lock()
	p, ok := r.preds[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	if p.frontier >= seq {
		r.mu.Unlock()
		return nil
	}
	w := waiter{seq: seq, done: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	r.mu.Unlock()

	select {
	case <-w.done:
		return nil
	case <-ctx.Done():
		r.detachWaiter(key, w.done)
		// The frontier may have advanced concurrently with cancellation;
		// prefer success if the wait actually completed.
		select {
		case <-w.done:
			return nil
		default:
		}
		return fmt.Errorf("%w: predicate %q seq %d: %v", ErrWaitCancelled, key, seq, ctx.Err())
	}
}

func (r *Registry) detachWaiter(key string, done chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return
	}
	for i, w := range p.waiters {
		if w.done == done {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			return
		}
	}
}

// Monitor registers fn to run each time key's frontier advances, and
// returns a cancel function. fn runs on the recompute path; keep it short
// or hand off to a goroutine.
func (r *Registry) Monitor(key string, fn MonitorFunc) (cancel func(), err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	id := p.nextMonID
	p.nextMonID++
	p.monitors[id] = fn
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if p2, ok := r.preds[key]; ok {
			delete(p2.monitors, id)
		}
	}, nil
}

// Recompute re-evaluates every predicate against the current ACK recorder
// state, releases satisfied waiters, and fires monitors for predicates
// whose frontier advanced. It is called by the node's control-plane loop
// after each batch of ACK updates.
func (r *Registry) Recompute() {
	type firing struct {
		fns      []MonitorFunc
		frontier uint64
	}
	var (
		released []chan struct{}
		firings  []firing
	)
	r.mu.Lock()
	for _, p := range r.preds {
		f := r.table.EvalLocked(p.prog)
		if f <= p.frontier {
			continue
		}
		p.frontier = f
		released = append(released, p.releaseWaitersLocked()...)
		if len(p.monitors) > 0 {
			fns := make([]MonitorFunc, 0, len(p.monitors))
			for _, fn := range p.monitors {
				fns = append(fns, fn)
			}
			firings = append(firings, firing{fns: fns, frontier: f})
		}
	}
	r.mu.Unlock()

	releaseAll(released)
	for _, f := range firings {
		for _, fn := range f.fns {
			fn(f.frontier)
		}
	}
}

// releaseWaitersLocked removes and returns the done channels of waiters
// satisfied by the current frontier. Caller holds r.mu.
func (p *predicate) releaseWaitersLocked() []chan struct{} {
	if len(p.waiters) == 0 {
		return nil
	}
	var released []chan struct{}
	kept := p.waiters[:0]
	for _, w := range p.waiters {
		if w.seq <= p.frontier {
			released = append(released, w.done)
		} else {
			kept = append(kept, w)
		}
	}
	p.waiters = kept
	return released
}

func releaseAll(chans []chan struct{}) {
	for _, c := range chans {
		close(c)
	}
}
