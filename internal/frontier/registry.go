package frontier

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"stabilizer/internal/dsl"
	"stabilizer/internal/metrics"
)

// MonitorFunc receives the most recent stability frontier of a predicate
// each time it advances. Because control information is monotonic,
// intermediate values may be skipped: an upcall with frontier 91 implies
// the stability of every earlier message (paper §III-A).
type MonitorFunc func(frontier uint64)

// Registry stores compiled predicates keyed by name and drives their
// re-evaluation as the ACK recorder advances. It implements the paper's
// three control-plane interfaces (§III-D): waitfor,
// monitor_stability_frontier, and register/change_predicate.
//
// Evaluation is incremental and optionally deferred. Every predicate is
// indexed by the recorder-table cells it reads; an ACK update marks dirty
// only the predicates whose operands moved (NoteCellUpdate/NoteNodeUpdate),
// so idle predicates cost nothing. In inline mode (the default) the dirty
// set drains immediately on the update path — the original synchronous
// semantics. StartDeferred moves the drain onto a periodic control-plane
// tick instead, batching ACK ingestion off the data path (deferred update
// stabilization); frontier visibility then lags ground truth by at most one
// tick interval.
type Registry struct {
	env   dsl.Env
	table *Table

	mu    sync.Mutex
	preds map[string]*predicate
	// byCell and byNode invert each predicate's read set: byCell keys the
	// exact (node, type) cells a program loads, byNode the WAN nodes it
	// depends on (for UpdateAll-style whole-node advances). dirty is the
	// set of predicates whose operands moved since the last drain.
	byCell map[dsl.Cell]map[*predicate]struct{}
	byNode map[int]map[*predicate]struct{}
	dirty  map[*predicate]struct{}

	// interval is the stabilization tick period; 0 means inline mode
	// (drain on the update path). stop/wg manage the tick goroutine.
	interval time.Duration
	stop     chan struct{}
	wg       sync.WaitGroup

	// Instrumentation (optional; see EnableMetrics / OnAdvance).
	recomputes   *metrics.Counter
	predEvals    *metrics.Counter
	monitorFires *metrics.Counter
	waiters      *metrics.Gauge
	dirtyPreds   *metrics.Gauge
	frontiers    *metrics.GaugeVec
	tickDur      *metrics.Histogram
	// onAdvance is copy-on-write: OnAdvance and its cancel funcs swap in a
	// fresh slice under mu, so a snapshot taken under mu stays safe to
	// iterate after unlock.
	onAdvance     []advanceHook
	nextAdvanceID int

	// pubMu orders advance deliveries per predicate. The drain path
	// (publish) and the swap path (Change) both fire onAdvance hooks
	// outside mu, so two racing publishes for the same key could hand
	// observers the same frontier twice — or an older value after a newer
	// one. published is the high-water of values already delivered per
	// key; pubMu stays held across the hook calls because the claim and
	// the delivery must be atomic for the per-key stream to stay ordered.
	pubMu     sync.Mutex
	published map[string]uint64
}

// advanceHook is one OnAdvance registration; the id makes it detachable.
type advanceHook struct {
	id int
	fn func(key string, old, new uint64)
}

type predicate struct {
	key      string
	prog     *dsl.Program
	cells    []dsl.Cell
	frontier uint64

	monitors  map[int]MonitorFunc
	nextMonID int
	waiters   waiterHeap
}

// NewRegistry creates a predicate registry evaluating against table and
// resolving predicate sources against env.
func NewRegistry(env dsl.Env, table *Table) *Registry {
	return &Registry{
		env:    env,
		table:  table,
		preds:  make(map[string]*predicate),
		byCell: make(map[dsl.Cell]map[*predicate]struct{}),
		byNode: make(map[int]map[*predicate]struct{}),
		dirty:  make(map[*predicate]struct{}),

		published: make(map[string]uint64),
	}
}

// EnableMetrics publishes the registry's control-plane instrumentation into
// m: recompute passes, per-predicate evaluations, monitor fires, pending
// waiters, dirty-set depth, tick duration and a per-predicate frontier
// gauge. Call before Register; not safe to call concurrently with use.
func (r *Registry) EnableMetrics(m *metrics.Registry) {
	r.recomputes = m.Counter("stabilizer_frontier_recomputes_total",
		"Predicate re-evaluation passes over the ACK recorder.")
	r.predEvals = m.Counter("stabilizer_frontier_pred_evals_total",
		"Individual predicate evaluations against the ACK recorder.")
	r.monitorFires = m.Counter("stabilizer_frontier_monitor_fires_total",
		"Stability-frontier monitor callbacks invoked.")
	r.waiters = m.Gauge("stabilizer_frontier_waiters",
		"WaitFor callers currently blocked on a predicate.")
	r.dirtyPreds = m.Gauge("stabilizer_frontier_dirty_preds",
		"Predicates marked dirty and awaiting the next stabilization drain.")
	r.frontiers = m.GaugeVec("stabilizer_frontier_seq",
		"Last computed stability frontier per predicate.", "predicate")
	r.tickDur = m.Histogram("stabilizer_frontier_tick_duration_seconds",
		"Duration of stabilization drains (dirty-set evaluation passes).",
		metrics.LatencyOpts)
}

// StartDeferred switches the registry into deferred mode: dirty predicates
// are drained by a background tick every interval instead of inline on the
// update path. A non-positive interval is a no-op (inline mode). Call once,
// before concurrent use; pair with Close.
func (r *Registry) StartDeferred(interval time.Duration) {
	if interval <= 0 {
		return
	}
	stop := make(chan struct{})
	r.mu.Lock()
	r.interval = interval
	r.stop = stop
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Flush()
			case <-stop:
				return
			}
		}
	}()
}

// Interval returns the stabilization tick period (0 = inline mode).
func (r *Registry) Interval() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.interval
}

// Close stops the deferred tick goroutine (if any), performs a final drain
// so no dirty predicate is left unevaluated, and reverts the registry to
// inline mode so late updates still stabilize. Safe to call when deferred
// mode was never started, and safe to call more than once.
func (r *Registry) Close() {
	r.mu.Lock()
	stop := r.stop
	r.stop = nil
	r.interval = 0
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		r.wg.Wait()
	}
	r.Flush()
}

// OnAdvance adds a hook invoked with (key, old, new) after a predicate's
// frontier moves forward — outside the registry lock, before waiters are
// released, so latency samples exist by the time WaitFor returns. The core
// uses it to record stability latency; invariant checkers use it to watch
// monotonicity. Hooks run in registration order and accumulate until their
// cancel func detaches them (cancel is idempotent). Safe to call on a live
// registry; a nil fn returns a harmless no-op cancel.
func (r *Registry) OnAdvance(fn func(key string, old, new uint64)) (cancel func()) {
	if fn == nil {
		return func() {}
	}
	r.mu.Lock()
	id := r.nextAdvanceID
	r.nextAdvanceID++
	hooks := make([]advanceHook, len(r.onAdvance), len(r.onAdvance)+1)
	copy(hooks, r.onAdvance)
	r.onAdvance = append(hooks, advanceHook{id: id, fn: fn})
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		hooks := make([]advanceHook, 0, len(r.onAdvance))
		for _, h := range r.onAdvance {
			if h.id != id {
				hooks = append(hooks, h)
			}
		}
		r.onAdvance = hooks
		r.mu.Unlock()
	}
}

// setFrontierGauge mirrors a predicate's frontier into its gauge.
func (r *Registry) setFrontierGauge(key string, f uint64) {
	if r.frontiers != nil {
		r.frontiers.With(key).Set(int64(f))
	}
}

// addWaiters shifts the pending-waiter gauge by delta.
func (r *Registry) addWaiters(delta int) {
	if r.waiters != nil && delta != 0 {
		r.waiters.Add(int64(delta))
	}
}

// WaiterCount returns the number of WaitFor callers currently blocked.
func (r *Registry) WaiterCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, p := range r.preds {
		n += p.waiters.Len()
	}
	return n
}

// DirtyCount returns the number of predicates awaiting the next drain.
func (r *Registry) DirtyCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.dirty)
}

// indexLocked adds p to the inverted cell and node indexes. Caller holds mu.
func (r *Registry) indexLocked(p *predicate) {
	for _, c := range p.cells {
		m := r.byCell[c]
		if m == nil {
			m = make(map[*predicate]struct{})
			r.byCell[c] = m
		}
		m[p] = struct{}{}
	}
	for _, n := range p.prog.DependsOn() {
		m := r.byNode[n]
		if m == nil {
			m = make(map[*predicate]struct{})
			r.byNode[n] = m
		}
		m[p] = struct{}{}
	}
}

// unindexLocked removes p from the inverted indexes and the dirty set.
// Caller holds mu.
func (r *Registry) unindexLocked(p *predicate) {
	for _, c := range p.cells {
		if m := r.byCell[c]; m != nil {
			delete(m, p)
			if len(m) == 0 {
				delete(r.byCell, c)
			}
		}
	}
	for _, n := range p.prog.DependsOn() {
		if m := r.byNode[n]; m != nil {
			delete(m, p)
			if len(m) == 0 {
				delete(r.byNode, n)
			}
		}
	}
	delete(r.dirty, p)
}

// Register compiles source and installs it under key. Registering an
// existing key fails; use Change to swap a predicate at runtime.
func (r *Registry) Register(key, source string) error {
	prog, err := dsl.Compile(source, r.env)
	if err != nil {
		return fmt.Errorf("register predicate %q: %w", key, err)
	}
	r.mu.Lock()
	if _, dup := r.preds[key]; dup {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPredExists, key)
	}
	p := &predicate{
		key:      key,
		prog:     prog,
		cells:    prog.Cells(),
		frontier: r.table.EvalLocked(prog),
		monitors: make(map[int]MonitorFunc),
	}
	r.preds[key] = p
	r.indexLocked(p)
	f := p.frontier
	r.mu.Unlock()
	r.setFrontierGauge(key, f)
	return nil
}

// RegisterBatch compiles and installs a set of predicates atomically:
// either every source compiles and every key is new, and all of them are
// registered in one step, or nothing is registered at all. Keys are
// validated in sorted order so the first error reported is deterministic.
func (r *Registry) RegisterBatch(preds map[string]string) error {
	keys := make([]string, 0, len(preds))
	for k := range preds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Compile everything before taking the lock: compilation is the slow,
	// fallible part and needs no registry state.
	progs := make(map[string]*dsl.Program, len(preds))
	for _, k := range keys {
		prog, err := dsl.Compile(preds[k], r.env)
		if err != nil {
			return fmt.Errorf("register predicate %q: %w", k, err)
		}
		progs[k] = prog
	}
	r.mu.Lock()
	for _, k := range keys {
		if _, dup := r.preds[k]; dup {
			r.mu.Unlock()
			return fmt.Errorf("%w: %q", ErrPredExists, k)
		}
	}
	type installed struct {
		key string
		f   uint64
	}
	out := make([]installed, 0, len(keys))
	for _, k := range keys {
		prog := progs[k]
		p := &predicate{
			key:      k,
			prog:     prog,
			cells:    prog.Cells(),
			frontier: r.table.EvalLocked(prog),
			monitors: make(map[int]MonitorFunc),
		}
		r.preds[k] = p
		r.indexLocked(p)
		out = append(out, installed{key: k, f: p.frontier})
	}
	r.mu.Unlock()
	for _, in := range out {
		r.setFrontierGauge(in.key, in.f)
	}
	return nil
}

// Change swaps the predicate under key for a newly compiled source, at
// runtime (paper §III-D / §VI-D dynamic reconfiguration). The frontier is
// re-evaluated immediately — even in deferred mode, so callers that swap to
// a weaker predicate observe the effect without waiting a tick; note that
// switching to a stronger predicate can move the frontier backwards — the
// paper leaves handling that gap to the application, and so do we. Pending
// waiters stay queued and are judged against the new predicate.
func (r *Registry) Change(key, source string) error {
	prog, err := dsl.Compile(source, r.env)
	if err != nil {
		return fmt.Errorf("change predicate %q: %w", key, err)
	}
	r.mu.Lock()
	p, ok := r.preds[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	old := p.frontier
	r.unindexLocked(p)
	p.prog = prog
	p.cells = prog.Cells()
	r.indexLocked(p)
	p.frontier = r.table.EvalLocked(prog)
	newF := p.frontier
	released := p.releaseWaitersLocked()
	hooks := r.onAdvance
	// A swap to a weaker predicate can advance the frontier immediately;
	// monitors must hear about it just like a drain advance, or state
	// keyed to the frontier (send-log reclaim, most importantly) would wait
	// for an ACK that may never come — e.g. the degraded-mode fallback that
	// swaps reclaim to a majority predicate precisely because the full set
	// has stopped acking.
	var fns []MonitorFunc
	if newF > old && len(p.monitors) > 0 {
		fns = make([]MonitorFunc, 0, len(p.monitors))
		for _, fn := range p.monitors {
			fns = append(fns, fn)
		}
	}
	r.mu.Unlock()
	if newF > old {
		r.publishAdvance(key, old, newF, hooks)
	} else {
		r.setFrontierGauge(key, newF)
	}
	r.addWaiters(-len(released))
	releaseAll(released)
	for _, fn := range fns {
		fn(newF)
	}
	if len(fns) > 0 && r.monitorFires != nil {
		r.monitorFires.Add(int64(len(fns)))
	}
	return nil
}

// Remove deletes the predicate under key. Pending waiters are released
// with no error — callers that need stricter semantics should not remove
// predicates with active waiters.
func (r *Registry) Remove(key string) error {
	r.mu.Lock()
	p, ok := r.preds[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	delete(r.preds, key)
	r.unindexLocked(p)
	released := make([]chan struct{}, 0, p.waiters.Len())
	for _, w := range p.waiters {
		w.idx = -1
		released = append(released, w.done)
	}
	p.waiters = nil
	r.mu.Unlock()
	if r.frontiers != nil {
		r.frontiers.Delete(key)
	}
	// A later Register under the same key starts a fresh event stream.
	r.pubMu.Lock()
	delete(r.published, key)
	r.pubMu.Unlock()
	r.addWaiters(-len(released))
	releaseAll(released)
	return nil
}

// Has reports whether key is registered.
func (r *Registry) Has(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.preds[key]
	return ok
}

// Keys returns the registered predicate keys, sorted.
func (r *Registry) Keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.preds))
	for k := range r.preds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Source returns the DSL source of the predicate under key.
func (r *Registry) Source(key string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.prog.Source(), nil
}

// DependsOn returns the WAN nodes the predicate under key reads.
func (r *Registry) DependsOn(key string) ([]int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.prog.DependsOn(), nil
}

// Cells returns the recorder-table cells the predicate under key reads,
// in first-load order. Stall blame attribution compares each dependent
// peer's cell value against the stalled frontier.
func (r *Registry) Cells(key string) ([]dsl.Cell, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.prog.Cells(), nil
}

// Frontier returns the last computed stability frontier of key.
func (r *Registry) Frontier(key string) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	return p.frontier, nil
}

// WaitFor blocks until the stability frontier of key reaches seq, the
// context is cancelled, or the predicate is removed.
func (r *Registry) WaitFor(ctx context.Context, seq uint64, key string) error {
	r.mu.Lock()
	p, ok := r.preds[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	if p.frontier >= seq {
		r.mu.Unlock()
		return nil
	}
	w := &waiter{seq: seq, done: make(chan struct{})}
	heap.Push(&p.waiters, w)
	r.mu.Unlock()
	r.addWaiters(1)

	select {
	case <-w.done:
		return nil
	case <-ctx.Done():
		r.detachWaiter(p, w)
		// The frontier may have advanced concurrently with cancellation;
		// prefer success if the wait actually completed.
		select {
		case <-w.done:
			return nil
		default:
		}
		return fmt.Errorf("%w: predicate %q seq %d: %v", ErrWaitCancelled, key, seq, ctx.Err())
	}
}

// detachWaiter removes a cancelled waiter from its predicate's heap in
// O(log n). The predicate object stays valid across Change (which mutates
// in place); after Remove or release the waiter's idx is already -1 and
// this is a no-op.
func (r *Registry) detachWaiter(p *predicate, w *waiter) {
	r.mu.Lock()
	if w.idx >= 0 {
		heap.Remove(&p.waiters, w.idx)
		r.mu.Unlock()
		r.addWaiters(-1)
		return
	}
	r.mu.Unlock()
}

// Monitor registers fn to run each time key's frontier advances, and
// returns a cancel function. fn runs on the stabilization drain path; keep
// it short or hand off to a goroutine.
func (r *Registry) Monitor(key string, fn MonitorFunc) (cancel func(), err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.preds[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPredUnknown, key)
	}
	id := p.nextMonID
	p.nextMonID++
	p.monitors[id] = fn
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if p2, ok := r.preds[key]; ok {
			delete(p2.monitors, id)
		}
	}, nil
}

// NoteCellUpdate records that recorder cell (node, typ) advanced: every
// predicate reading that cell is marked dirty. In inline mode the dirty set
// drains immediately; in deferred mode it waits for the next tick.
func (r *Registry) NoteCellUpdate(node int, typ uint16) {
	r.mu.Lock()
	for p := range r.byCell[dsl.Cell{Node: node, Type: typ}] {
		r.dirty[p] = struct{}{}
	}
	r.noteFlushLocked()
}

// NoteNodeUpdate records that every stability counter of node advanced
// (Table.UpdateAll — the origin's own counters move on sequence
// assignment): every predicate depending on that node is marked dirty.
func (r *Registry) NoteNodeUpdate(node int) {
	r.mu.Lock()
	for p := range r.byNode[node] {
		r.dirty[p] = struct{}{}
	}
	r.noteFlushLocked()
}

// noteFlushLocked finishes a Note*: publishes the dirty gauge and, in
// inline mode, drains immediately. Caller holds mu; released on return.
func (r *Registry) noteFlushLocked() {
	if r.dirtyPreds != nil {
		r.dirtyPreds.Set(int64(len(r.dirty)))
	}
	if r.interval != 0 || len(r.dirty) == 0 {
		r.mu.Unlock()
		return
	}
	work, hooks := r.drainLocked()
	r.mu.Unlock()
	r.publish(work, hooks)
}

// Recompute re-evaluates every registered predicate against the current
// ACK recorder state, regardless of dirtiness — the full pass older callers
// and crash-recovery paths rely on (e.g. after Table.Restore, which bypasses
// the Note* hooks).
func (r *Registry) Recompute() {
	r.mu.Lock()
	for _, p := range r.preds {
		r.dirty[p] = struct{}{}
	}
	work, hooks := r.drainLocked()
	r.mu.Unlock()
	r.publish(work, hooks)
}

// Flush drains the dirty set now: every dirty predicate is re-evaluated,
// satisfied waiters released and monitors fired. The deferred tick calls
// this once per interval; tests call it to force determinism.
func (r *Registry) Flush() {
	r.mu.Lock()
	work, hooks := r.drainLocked()
	r.mu.Unlock()
	r.publish(work, hooks)
}

type firing struct {
	fns      []MonitorFunc
	frontier uint64
}

type advance struct {
	key      string
	old, new uint64
}

// flushWork is everything a drain produced under mu that must be published
// outside it: gauge moves and advance hooks first, then waiter releases,
// then monitor fires — so latency observers run before WaitFor returns.
type flushWork struct {
	advances []advance
	released []chan struct{}
	firings  []firing
	evals    int
	took     time.Duration
}

// drainLocked evaluates and clears the dirty set. Caller holds mu.
func (r *Registry) drainLocked() (flushWork, []advanceHook) {
	var work flushWork
	if len(r.dirty) == 0 {
		return work, nil
	}
	var start time.Time
	if r.tickDur != nil {
		start = time.Now()
	}
	hooks := r.onAdvance
	for p := range r.dirty {
		delete(r.dirty, p)
		work.evals++
		f := r.table.EvalLocked(p.prog)
		if f <= p.frontier {
			continue
		}
		work.advances = append(work.advances, advance{key: p.key, old: p.frontier, new: f})
		p.frontier = f
		work.released = append(work.released, p.releaseWaitersLocked()...)
		if len(p.monitors) > 0 {
			fns := make([]MonitorFunc, 0, len(p.monitors))
			for _, fn := range p.monitors {
				fns = append(fns, fn)
			}
			work.firings = append(work.firings, firing{fns: fns, frontier: f})
		}
	}
	if r.tickDur != nil {
		work.took = time.Since(start)
	}
	return work, hooks
}

// publish applies a drain's effects outside the registry lock.
func (r *Registry) publish(work flushWork, hooks []advanceHook) {
	if work.evals == 0 {
		return
	}
	if r.recomputes != nil {
		r.recomputes.Inc()
	}
	if r.predEvals != nil {
		r.predEvals.Add(int64(work.evals))
	}
	if r.dirtyPreds != nil {
		r.dirtyPreds.Set(0)
	}
	if r.tickDur != nil {
		r.tickDur.Observe(int64(work.took))
	}
	// The advance hook runs before waiters are released so observers (the
	// core's stability-latency samples) are recorded by the time a WaitFor
	// caller resumes.
	for _, a := range work.advances {
		r.publishAdvance(a.key, a.old, a.new, hooks)
	}
	r.addWaiters(-len(work.released))
	releaseAll(work.released)
	for _, f := range work.firings {
		for _, fn := range f.fns {
			fn(f.frontier)
		}
		if r.monitorFires != nil {
			r.monitorFires.Add(int64(len(f.fns)))
		}
	}
}

// publishAdvance delivers one frontier advance to the gauge and the
// onAdvance hooks, in strictly increasing per-key order. Both publish
// paths — drain and swap — run outside mu, so without this guard two
// concurrent publishes could deliver the same value twice or out of
// order. Advances at or below the published high-water are dropped:
// after a swap to a stronger predicate legally retreats the frontier,
// the re-climb back to ground already covered stays silent, so latency
// observers never sample the same sequence twice and the per-key event
// stream stays monotonic. Hooks must not re-enter the registry's
// publish paths (they already must not: they run under drains).
func (r *Registry) publishAdvance(key string, old, newF uint64, hooks []advanceHook) {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	if last, seen := r.published[key]; seen {
		if newF <= last {
			return
		}
		old = last
	}
	r.published[key] = newF
	r.setFrontierGauge(key, newF)
	for _, h := range hooks {
		h.fn(key, old, newF)
	}
}

// releaseWaitersLocked pops and returns the done channels of waiters
// satisfied by the current frontier, in ascending seq order. Caller holds
// the registry mutex.
func (p *predicate) releaseWaitersLocked() []chan struct{} {
	if p.waiters.Len() == 0 || p.waiters[0].seq > p.frontier {
		return nil
	}
	var released []chan struct{}
	for p.waiters.Len() > 0 && p.waiters[0].seq <= p.frontier {
		released = append(released, heap.Pop(&p.waiters).(*waiter).done)
	}
	return released
}

func releaseAll(chans []chan struct{}) {
	for _, c := range chans {
		close(c)
	}
}
