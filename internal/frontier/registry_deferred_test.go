package frontier

import (
	"container/heap"
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFrontier polls until key's frontier reaches want or the deadline
// passes, for tests racing the deferred tick.
func waitFrontier(t *testing.T, reg *Registry, key string, want uint64, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		if f, err := reg.Frontier(key); err == nil && f >= want {
			return
		}
		if time.Now().After(stop) {
			f, _ := reg.Frontier(key)
			t.Fatalf("frontier(%q) = %d, want >= %d after %v", key, f, want, deadline)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDeferredMarksDirtyUntilFlush(t *testing.T) {
	reg, table, _ := newTestRegistry(2)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	// An hour-long interval means the tick never fires inside the test:
	// drains happen only when we ask.
	reg.StartDeferred(time.Hour)
	defer reg.Close()

	table.Update(1, TypeReceived, 5)
	table.Update(2, TypeReceived, 5)
	reg.NoteCellUpdate(1, TypeReceived)
	reg.NoteCellUpdate(2, TypeReceived)
	if f, _ := reg.Frontier("p"); f != 0 {
		t.Fatalf("frontier advanced before the drain: %d", f)
	}
	if d := reg.DirtyCount(); d != 1 {
		t.Fatalf("dirty count = %d, want 1 (same predicate marked twice)", d)
	}
	reg.Flush()
	if f, _ := reg.Frontier("p"); f != 5 {
		t.Fatalf("frontier after drain = %d, want 5", f)
	}
	if d := reg.DirtyCount(); d != 0 {
		t.Fatalf("dirty count after drain = %d, want 0", d)
	}
}

func TestDeferredTickDrains(t *testing.T) {
	reg, table, _ := newTestRegistry(2)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	reg.StartDeferred(time.Millisecond)
	defer reg.Close()
	if got := reg.Interval(); got != time.Millisecond {
		t.Fatalf("Interval = %v, want 1ms", got)
	}
	table.Update(1, TypeReceived, 9)
	table.Update(2, TypeReceived, 9)
	reg.NoteCellUpdate(1, TypeReceived)
	reg.NoteCellUpdate(2, TypeReceived)
	waitFrontier(t, reg, "p", 9, 2*time.Second)
}

func TestDeferredWaitForReleasedByTick(t *testing.T) {
	reg, table, _ := newTestRegistry(2)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	reg.StartDeferred(time.Millisecond)
	defer reg.Close()
	done := make(chan error, 1)
	go func() { done <- reg.WaitFor(context.Background(), 4, "p") }()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	table.Update(1, TypeReceived, 4)
	table.Update(2, TypeReceived, 4)
	reg.NoteCellUpdate(1, TypeReceived)
	reg.NoteCellUpdate(2, TypeReceived)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter errored: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tick never released the waiter")
	}
}

func TestCloseDrainsAndRevertsInline(t *testing.T) {
	reg, table, _ := newTestRegistry(1)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	reg.StartDeferred(time.Hour)
	table.Update(1, TypeReceived, 3)
	reg.NoteCellUpdate(1, TypeReceived)
	if f, _ := reg.Frontier("p"); f != 0 {
		t.Fatalf("frontier advanced before Close: %d", f)
	}
	reg.Close()
	if f, _ := reg.Frontier("p"); f != 3 {
		t.Fatalf("Close did not drain: frontier = %d, want 3", f)
	}
	// After Close the registry is inline again: updates stabilize
	// synchronously, so a straggling ACK is not lost.
	table.Update(1, TypeReceived, 7)
	reg.NoteCellUpdate(1, TypeReceived)
	if f, _ := reg.Frontier("p"); f != 7 {
		t.Fatalf("post-Close update not inline: frontier = %d, want 7", f)
	}
	reg.Close() // idempotent
}

func TestIncrementalDirtiesOnlyReaders(t *testing.T) {
	reg, table, _ := newTestRegistry(2)
	if err := reg.Register("recv", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("deliv", "MIN($ALLWNODES.delivered)"); err != nil {
		t.Fatal(err)
	}
	reg.StartDeferred(time.Hour)
	defer reg.Close()

	// A cell nobody reads dirties nothing.
	reg.NoteCellUpdate(1, TypePersisted)
	if d := reg.DirtyCount(); d != 0 {
		t.Fatalf("unread cell dirtied %d predicates", d)
	}
	// A received cell dirties only the predicate reading received.
	table.Update(1, TypeReceived, 2)
	reg.NoteCellUpdate(1, TypeReceived)
	if d := reg.DirtyCount(); d != 1 {
		t.Fatalf("received cell dirtied %d predicates, want 1", d)
	}
	// A whole-node advance (UpdateAll) dirties every predicate that
	// depends on the node, whatever type it reads.
	reg.NoteNodeUpdate(1)
	if d := reg.DirtyCount(); d != 2 {
		t.Fatalf("node update dirtied %d predicates, want 2", d)
	}
	reg.Flush()
	if d := reg.DirtyCount(); d != 0 {
		t.Fatalf("dirty count after drain = %d", d)
	}

	// Change swaps the index along with the program: the old read set no
	// longer dirties the predicate, the new one does.
	if err := reg.Change("deliv", "MIN($ALLWNODES.persisted)"); err != nil {
		t.Fatal(err)
	}
	reg.NoteCellUpdate(1, TypeDelivered)
	if d := reg.DirtyCount(); d != 0 {
		t.Fatalf("stale index: delivered cell dirtied %d predicates after Change", d)
	}
	reg.NoteCellUpdate(1, TypePersisted)
	if d := reg.DirtyCount(); d != 1 {
		t.Fatalf("persisted cell dirtied %d predicates, want 1", d)
	}
	// Remove detaches from the index entirely.
	reg.Flush()
	if err := reg.Remove("recv"); err != nil {
		t.Fatal(err)
	}
	reg.NoteCellUpdate(1, TypeReceived)
	if d := reg.DirtyCount(); d != 0 {
		t.Fatalf("removed predicate still indexed: dirty = %d", d)
	}
}

// TestReleaseOrderSeqSorted is the white-box heap contract: waiters come
// off releaseWaitersLocked in ascending seq order, never past the
// frontier, and the survivors keep a consistent heap index.
func TestReleaseOrderSeqSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := &predicate{}
	seqOf := make(map[chan struct{}]uint64)
	const waiters, cut = 1000, 100
	for i := 0; i < waiters; i++ {
		w := &waiter{seq: uint64(rng.Intn(2*cut)) + 1, done: make(chan struct{})}
		heap.Push(&p.waiters, w)
		seqOf[w.done] = w.seq
	}
	// Detach a random subset first, like concurrent cancellations would.
	for i := 0; i < 100; i++ {
		heap.Remove(&p.waiters, rng.Intn(p.waiters.Len()))
	}
	p.frontier = cut
	released := p.releaseWaitersLocked()
	prev := uint64(0)
	for _, c := range released {
		s := seqOf[c]
		if s < prev {
			t.Fatalf("release order not seq-sorted: %d after %d", s, prev)
		}
		if s > cut {
			t.Fatalf("phantom release: seq %d > frontier %d", s, cut)
		}
		prev = s
	}
	for i, w := range p.waiters {
		if w.idx != i {
			t.Fatalf("heap index corrupt: waiters[%d].idx = %d", i, w.idx)
		}
		if w.seq <= cut {
			t.Fatalf("waiter seq %d <= frontier %d left unreleased", w.seq, cut)
		}
	}
}

// TestMassCancelBoundedTime is the en-masse cancellation regression: with
// the heap's O(log n) detach, cancelling massCancelWaiters parked waiters
// finishes in seconds; the old linear scan under the registry lock made
// this wave quadratic.
func TestMassCancelBoundedTime(t *testing.T) {
	reg, _, _ := newTestRegistry(2)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make([]error, massCancelWaiters)
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = reg.WaitFor(ctx, uint64(i+1), "p")
		}(i)
	}
	parkBy := time.Now().Add(60 * time.Second)
	for reg.WaiterCount() != massCancelWaiters {
		if time.Now().After(parkBy) {
			t.Fatalf("only %d/%d waiters parked", reg.WaiterCount(), massCancelWaiters)
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	cancel()
	wg.Wait()
	elapsed := time.Since(start)
	if n := reg.WaiterCount(); n != 0 {
		t.Fatalf("%d waiters left attached after cancellation", n)
	}
	for i, err := range errs {
		if !errors.Is(err, ErrWaitCancelled) {
			t.Fatalf("waiter %d: err = %v, want ErrWaitCancelled", i, err)
		}
	}
	// Generous tripwire: the O(n²) scan took minutes at this size; the
	// heap finishes in well under a second of detach work (wall clock is
	// dominated by waking the goroutines).
	if limit := 20 * time.Second; elapsed > limit {
		t.Fatalf("mass cancel took %v, want < %v", elapsed, limit)
	}
	t.Logf("cancelled %d waiters in %v", massCancelWaiters, elapsed)
}

// TestConcurrentWaitCancelChangeProperty drives randomized concurrent
// WaitFor / cancellation / Change / table-update / Remove interleavings
// and asserts the release property: a waiter that resumed successfully
// before Remove had seq <= the final frontier (no phantom release), every
// waiter with seq <= frontier is released once the dust settles
// (completeness), and cancellations never strand heap entries.
func TestConcurrentWaitCancelChangeProperty(t *testing.T) {
	const (
		n       = 3
		waiters = 300
		maxSeq  = 200 // every node's counter ends here, so F = maxSeq
	)
	for round := 0; round < 3; round++ {
		rng := rand.New(rand.NewSource(int64(1000 + round)))
		reg, table, _ := newTestRegistry(n)
		if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
			t.Fatal(err)
		}

		// Inputs (written before spawning, read-only afterwards) live apart
		// from outcomes (written only by waiter i, read after wg.Wait()) so
		// the main goroutine can inspect inputs while waiters still run.
		seqs := make([]uint64, waiters)
		cancels := make([]bool, waiters)
		type wres struct {
			preRemove bool // returned before Remove started
			err       error
		}
		results := make([]wres, waiters)
		var removed atomic.Bool
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			seq := uint64(rng.Intn(2*maxSeq)) + 1
			doCancel := rng.Intn(5) == 0
			seqs[i] = seq
			cancels[i] = doCancel
			delay := time.Duration(rng.Intn(2000)) * time.Microsecond
			wg.Add(1)
			go func(i int, seq uint64, doCancel bool, delay time.Duration) {
				defer wg.Done()
				ctx := context.Background()
				if doCancel {
					var cancel context.CancelFunc
					ctx, cancel = context.WithCancel(ctx)
					go func() {
						time.Sleep(delay)
						cancel()
					}()
				}
				err := reg.WaitFor(ctx, seq, "p")
				results[i].preRemove = !removed.Load()
				results[i].err = err
			}(i, seq, doCancel, delay)
		}

		var updWg sync.WaitGroup
		for node := 1; node <= n; node++ {
			updWg.Add(1)
			go func(node int) {
				defer updWg.Done()
				for s := uint64(1); s <= maxSeq; s++ {
					table.Update(node, TypeReceived, s)
					reg.NoteCellUpdate(node, TypeReceived)
				}
			}(node)
		}
		// Swap between semantically equivalent predicates while updates
		// and waits are in flight: the frontier stays monotonic, but the
		// swap path (unindex/reindex, immediate re-eval, waiter re-judge)
		// races everything else.
		updWg.Add(1)
		go func() {
			defer updWg.Done()
			srcs := []string{"KTH_MIN(1, $ALLWNODES)", "MIN($ALLWNODES)"}
			for i := 0; i < 20; i++ {
				if err := reg.Change("p", srcs[i%2]); err != nil {
					t.Errorf("change: %v", err)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		updWg.Wait()
		reg.Recompute()
		frontier, err := reg.Frontier("p")
		if err != nil {
			t.Fatal(err)
		}
		if frontier != maxSeq {
			t.Fatalf("round %d: final frontier = %d, want %d", round, frontier, maxSeq)
		}

		// Completeness: once quiesced, exactly the non-cancelled waiters
		// beyond the frontier are still parked.
		wantParked := 0
		for i := range seqs {
			if !cancels[i] && seqs[i] > frontier {
				wantParked++
			}
		}
		settleBy := time.Now().Add(30 * time.Second)
		for reg.WaiterCount() != wantParked {
			if time.Now().After(settleBy) {
				t.Fatalf("round %d: %d waiters parked after quiesce, want %d",
					round, reg.WaiterCount(), wantParked)
			}
			time.Sleep(time.Millisecond)
		}

		removed.Store(true)
		if err := reg.Remove("p"); err != nil {
			t.Fatal(err)
		}
		wg.Wait()

		for i, r := range results {
			if r.err == nil && r.preRemove && seqs[i] > frontier {
				t.Fatalf("round %d: waiter %d released with seq %d > frontier %d",
					round, i, seqs[i], frontier)
			}
			if r.err != nil {
				if !errors.Is(r.err, ErrWaitCancelled) {
					t.Fatalf("round %d: waiter %d unexpected error %v", round, i, r.err)
				}
				if !cancels[i] {
					t.Fatalf("round %d: waiter %d cancelled without a cancel", round, i)
				}
			}
		}
		if n := reg.WaiterCount(); n != 0 {
			t.Fatalf("round %d: %d waiters left after Remove", round, n)
		}
	}
}
