package frontier

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// testEnv is a minimal dsl.Env over n flat nodes.
type testEnv struct {
	n     int
	self  int
	types *Types
}

func (e *testEnv) N() int      { return e.n }
func (e *testEnv) MyNode() int { return e.self }

func (e *testEnv) AllNodes() []int {
	out := make([]int, e.n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func (e *testEnv) MyAZNodes() []int { return []int{e.self} }

func (e *testEnv) AZNodes(name string) ([]int, error) {
	return nil, fmt.Errorf("no az %q", name)
}

func (e *testEnv) NodeIndex(name string) (int, error) {
	return 0, fmt.Errorf("no node %q", name)
}

func (e *testEnv) StabilityType(name string) (uint16, error) { return e.types.Lookup(name) }

func newTestRegistry(n int) (*Registry, *Table, *Types) {
	types := NewTypes()
	table := NewTable(n)
	env := &testEnv{n: n, self: 1, types: types}
	return NewRegistry(env, table), table, types
}

func TestTypesRegistry(t *testing.T) {
	ty := NewTypes()
	for _, known := range []string{"received", "persisted", "delivered"} {
		if _, err := ty.Lookup(known); err != nil {
			t.Fatalf("well-known type %q missing: %v", known, err)
		}
	}
	id, err := ty.Register("verified")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if id < 16 {
		t.Fatalf("custom type id %d collides with reserved space", id)
	}
	if _, err := ty.Register("verified"); !errors.Is(err, ErrTypeExists) {
		t.Fatalf("duplicate register err = %v", err)
	}
	if _, err := ty.Register("9bad"); !errors.Is(err, ErrBadTypeName) {
		t.Fatalf("bad name err = %v", err)
	}
	if _, err := ty.Register(""); !errors.Is(err, ErrBadTypeName) {
		t.Fatalf("empty name err = %v", err)
	}
	if name := ty.Name(id); name != "verified" {
		t.Fatalf("Name(%d) = %q", id, name)
	}
	if name := ty.Name(9999); name != "type(9999)" {
		t.Fatalf("unknown Name = %q", name)
	}
	if !ty.Known(TypeReceived) || ty.Known(9999) {
		t.Fatal("Known() misreports")
	}
	if got := len(ty.IDs()); got != 4 {
		t.Fatalf("IDs() has %d entries, want 4", got)
	}
}

func TestTableMonotonicity(t *testing.T) {
	tb := NewTable(3)
	if !tb.Update(2, TypeReceived, 10) {
		t.Fatal("first update not recorded")
	}
	if tb.Update(2, TypeReceived, 5) {
		t.Fatal("stale update advanced the counter")
	}
	if tb.Update(2, TypeReceived, 10) {
		t.Fatal("duplicate update advanced the counter")
	}
	if !tb.Update(2, TypeReceived, 11) {
		t.Fatal("newer update rejected")
	}
	if got := tb.Value(2, TypeReceived); got != 11 {
		t.Fatalf("Value = %d, want 11", got)
	}
	if got := tb.Value(1, TypeReceived); got != 0 {
		t.Fatalf("untouched cell = %d, want 0", got)
	}
	// Out of range is a no-op.
	if tb.Update(0, TypeReceived, 5) || tb.Update(4, TypeReceived, 5) {
		t.Fatal("out-of-range update recorded")
	}
	if tb.Value(0, TypeReceived) != 0 || tb.Value(4, TypeReceived) != 0 {
		t.Fatal("out-of-range value nonzero")
	}
}

// TestQuickTableMonotonic property-checks that the table value equals the
// running maximum of all updates, under any interleaving order.
func TestQuickTableMonotonic(t *testing.T) {
	f := func(updates []uint16) bool {
		tb := NewTable(1)
		var max uint64
		for _, u := range updates {
			v := uint64(u)
			tb.Update(1, TypeReceived, v)
			if v > max {
				max = v
			}
			if tb.Value(1, TypeReceived) != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateAllAndEnsureType(t *testing.T) {
	tb := NewTable(2)
	tb.EnsureType(TypeReceived, 1, 5)
	tb.EnsureType(TypePersisted, 1, 5)
	tb.UpdateAll(1, 9)
	if tb.Value(1, TypeReceived) != 9 || tb.Value(1, TypePersisted) != 9 {
		t.Fatal("UpdateAll did not advance all rows")
	}
	// UpdateAll never regresses.
	tb.UpdateAll(1, 3)
	if tb.Value(1, TypeReceived) != 9 {
		t.Fatal("UpdateAll regressed a counter")
	}
}

func TestSnapshotRestore(t *testing.T) {
	tb := NewTable(3)
	tb.Update(1, TypeReceived, 7)
	tb.Update(3, TypePersisted, 2)
	snap := tb.Snapshot()

	tb2 := NewTable(3)
	tb2.Restore(snap)
	if tb2.Value(1, TypeReceived) != 7 || tb2.Value(3, TypePersisted) != 2 {
		t.Fatal("restore lost data")
	}
	// Mutating the snapshot must not affect the table.
	snap[TypeReceived][0] = 99
	if tb2.Value(1, TypeReceived) != 7 {
		t.Fatal("restore aliased the snapshot")
	}
	// Mismatched row sizes are ignored.
	tb3 := NewTable(2)
	tb3.Restore(map[uint16][]uint64{TypeReceived: {1, 2, 3}})
	if tb3.Value(1, TypeReceived) != 0 {
		t.Fatal("mismatched restore applied")
	}
}

func TestRegistryRegisterChangeRemove(t *testing.T) {
	reg, table, _ := newTestRegistry(3)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := reg.Register("p", "MIN($ALLWNODES)"); !errors.Is(err, ErrPredExists) {
		t.Fatalf("duplicate register err = %v", err)
	}
	if err := reg.Register("bad", "MIN($99)"); err == nil {
		t.Fatal("bad predicate registered")
	}
	if !reg.Has("p") || reg.Has("q") {
		t.Fatal("Has misreports")
	}
	if src, _ := reg.Source("p"); src != "MIN($ALLWNODES)" {
		t.Fatalf("Source = %q", src)
	}
	deps, _ := reg.DependsOn("p")
	if len(deps) != 3 {
		t.Fatalf("DependsOn = %v", deps)
	}

	table.Update(1, TypeReceived, 5)
	table.Update(2, TypeReceived, 5)
	table.Update(3, TypeReceived, 3)
	reg.Recompute()
	if f, _ := reg.Frontier("p"); f != 3 {
		t.Fatalf("frontier = %d, want 3", f)
	}

	if err := reg.Change("p", "MAX($ALLWNODES)"); err != nil {
		t.Fatalf("change: %v", err)
	}
	if f, _ := reg.Frontier("p"); f != 5 {
		t.Fatalf("frontier after change = %d, want 5", f)
	}
	if err := reg.Change("missing", "MAX($1)"); !errors.Is(err, ErrPredUnknown) {
		t.Fatalf("change missing err = %v", err)
	}

	if err := reg.Remove("p"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := reg.Remove("p"); !errors.Is(err, ErrPredUnknown) {
		t.Fatalf("double remove err = %v", err)
	}
	if len(reg.Keys()) != 0 {
		t.Fatalf("keys after remove = %v", reg.Keys())
	}
}

func TestWaitForReleasesInOrder(t *testing.T) {
	reg, table, _ := newTestRegistry(2)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for _, seq := range []uint64{3, 1, 2} {
		seq := seq
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := reg.WaitFor(context.Background(), seq, "p"); err != nil {
				t.Errorf("waitfor %d: %v", seq, err)
				return
			}
			mu.Lock()
			order = append(order, int(seq))
			mu.Unlock()
		}()
	}
	time.Sleep(20 * time.Millisecond) // let waiters park
	for s := uint64(1); s <= 3; s++ {
		table.Update(1, TypeReceived, s)
		table.Update(2, TypeReceived, s)
		reg.Recompute()
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("waiters released out of order: %v", order)
		}
	}
}

func TestWaitForImmediateWhenSatisfied(t *testing.T) {
	reg, table, _ := newTestRegistry(1)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	table.Update(1, TypeReceived, 10)
	reg.Recompute()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := reg.WaitFor(ctx, 10, "p"); err != nil {
		t.Fatalf("satisfied waitfor blocked: %v", err)
	}
	if err := reg.WaitFor(ctx, 99, "p"); !errors.Is(err, ErrWaitCancelled) {
		t.Fatalf("unsatisfied waitfor err = %v", err)
	}
}

func TestWaitForUnknownPredicate(t *testing.T) {
	reg, _, _ := newTestRegistry(1)
	if err := reg.WaitFor(context.Background(), 1, "nope"); !errors.Is(err, ErrPredUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoveReleasesWaiters(t *testing.T) {
	reg, _, _ := newTestRegistry(2)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- reg.WaitFor(context.Background(), 5, "p") }()
	time.Sleep(20 * time.Millisecond)
	if err := reg.Remove("p"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("waiter not released by Remove")
	}
}

func TestMonitorFiresOnAdvanceOnly(t *testing.T) {
	reg, table, _ := newTestRegistry(2)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var calls []uint64
	cancel, err := reg.Monitor("p", func(f uint64) {
		mu.Lock()
		calls = append(calls, f)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	table.Update(1, TypeReceived, 5)
	reg.Recompute() // min still 0: no fire
	table.Update(2, TypeReceived, 3)
	reg.Recompute() // min 3: fire
	reg.Recompute() // unchanged: no fire
	table.Update(2, TypeReceived, 7)
	reg.Recompute() // min 5: fire
	cancel()
	table.Update(1, TypeReceived, 9)
	reg.Recompute() // cancelled: no fire

	mu.Lock()
	defer mu.Unlock()
	want := []uint64{3, 5}
	if len(calls) != len(want) || calls[0] != want[0] || calls[1] != want[1] {
		t.Fatalf("monitor calls = %v, want %v", calls, want)
	}
}

func TestMonitorUnknownPredicate(t *testing.T) {
	reg, _, _ := newTestRegistry(1)
	if _, err := reg.Monitor("nope", func(uint64) {}); !errors.Is(err, ErrPredUnknown) {
		t.Fatalf("err = %v", err)
	}
}

// TestQuickFrontierMatchesOracle property-checks that after any sequence
// of random ACK updates, the registry frontier equals a naive re-evaluation
// of the predicate over a shadow table.
func TestQuickFrontierMatchesOracle(t *testing.T) {
	type update struct {
		Node uint8
		Seq  uint16
	}
	f := func(updates []update, kSeed uint8) bool {
		const n = 5
		k := int(kSeed)%n + 1
		pred := fmt.Sprintf("KTH_MIN(%d, $ALLWNODES)", k)
		reg, table, _ := newTestRegistry(n)
		if err := reg.Register("p", pred); err != nil {
			return false
		}
		shadow := make([]uint64, n)
		for _, u := range updates {
			node := int(u.Node)%n + 1
			seq := uint64(u.Seq)
			table.Update(node, TypeReceived, seq)
			if seq > shadow[node-1] {
				shadow[node-1] = seq
			}
			reg.Recompute()
			// Oracle: k-th smallest of shadow.
			cp := append([]uint64{}, shadow...)
			for i := 1; i < len(cp); i++ {
				for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
					cp[j-1], cp[j] = cp[j], cp[j-1]
				}
			}
			want := cp[k-1]
			got, _ := reg.Frontier("p")
			if got != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUpdatesAndRecompute(t *testing.T) {
	reg, table, _ := newTestRegistry(4)
	if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for node := 1; node <= 4; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := uint64(1); s <= 500; s++ {
				table.Update(node, TypeReceived, s)
				reg.Recompute()
			}
		}()
	}
	wg.Wait()
	reg.Recompute()
	if f, _ := reg.Frontier("p"); f != 500 {
		t.Fatalf("final frontier = %d, want 500", f)
	}
}
