//go:build race

package frontier

// massCancelWaiters under the race detector: every parked goroutine costs
// several KiB of shadow state, so the wave shrinks to keep -race CI within
// memory while still dwarfing any schedule the old O(n²) detach survived.
const massCancelWaiters = 25_000
