package frontier

import "container/heap"

// waiter is one parked WaitFor caller. Its heap position is tracked in idx
// so cancellation can detach it in O(log n) instead of scanning the whole
// waiter set under the registry lock (the old []waiter slice made a mass
// cancellation of n waiters an O(n²) pathology).
type waiter struct {
	seq  uint64
	done chan struct{}
	// idx is the waiter's position in its predicate's heap, maintained by
	// the heap.Interface methods; -1 once released or detached. Only valid
	// under the registry mutex.
	idx int
}

// waiterHeap is a seq-ordered min-heap of parked waiters: the next waiter
// to release is always at the root, so releasing after a frontier advance
// costs O(released · log n) and an idle advance costs one O(1) peek,
// independent of how many waiters are parked.
type waiterHeap []*waiter

var _ heap.Interface = (*waiterHeap)(nil)

func (h waiterHeap) Len() int           { return len(h) }
func (h waiterHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *waiterHeap) Push(x any) {
	w := x.(*waiter)
	w.idx = len(*h)
	*h = append(*h, w)
}

func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.idx = -1
	*h = old[:n-1]
	return w
}
