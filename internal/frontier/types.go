// Package frontier implements Stabilizer's control plane state: the
// monotonic ACK recorder table (paper Fig. 1), the stability-type registry,
// and the predicate registry that re-evaluates stability frontier
// predicates as control information streams in, releasing waitfor() callers
// and firing monitor callbacks.
package frontier

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Well-known stability types (paper §III-A: received, persisted, delivered).
// Application-defined types ("verified", "countersigned", ...) get ids from
// 16 upward.
const (
	TypeReceived  uint16 = 1
	TypePersisted uint16 = 2
	TypeDelivered uint16 = 3

	firstCustomType uint16 = 16
)

// Errors returned by the registries.
var (
	ErrTypeExists    = errors.New("frontier: stability type already registered")
	ErrTypeUnknown   = errors.New("frontier: unknown stability type")
	ErrPredExists    = errors.New("frontier: predicate key already registered")
	ErrPredUnknown   = errors.New("frontier: unknown predicate key")
	ErrTooManyTypes  = errors.New("frontier: stability type space exhausted")
	ErrBadTypeName   = errors.New("frontier: malformed stability type name")
	ErrWaitCancelled = errors.New("frontier: wait cancelled")
)

// Types maps stability-type names to compact numeric ids used on the wire
// and in compiled predicates. The three well-known types are pre-registered.
type Types struct {
	mu     sync.RWMutex
	byName map[string]uint16
	byID   map[uint16]string
	next   uint16
}

// NewTypes returns a registry with received, persisted and delivered
// pre-registered.
func NewTypes() *Types {
	t := &Types{
		byName: make(map[string]uint16),
		byID:   make(map[uint16]string),
		next:   firstCustomType,
	}
	for name, id := range map[string]uint16{
		"received":  TypeReceived,
		"persisted": TypePersisted,
		"delivered": TypeDelivered,
	} {
		t.byName[name] = id
		t.byID[id] = name
	}
	return t
}

// Register adds an application-defined stability type and returns its id.
func (t *Types) Register(name string) (uint16, error) {
	if !validTypeName(name) {
		return 0, fmt.Errorf("%w: %q", ErrBadTypeName, name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.byName[name]; dup {
		return 0, fmt.Errorf("%w: %q", ErrTypeExists, name)
	}
	if t.next == 0 { // wrapped
		return 0, ErrTooManyTypes
	}
	id := t.next
	t.next++
	t.byName[name] = id
	t.byID[id] = name
	return id, nil
}

// Lookup resolves a type name to its id.
func (t *Types) Lookup(name string) (uint16, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrTypeUnknown, name)
	}
	return id, nil
}

// Name resolves a type id to its name; unknown ids render numerically.
func (t *Types) Name(id uint16) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if n, ok := t.byID[id]; ok {
		return n
	}
	return fmt.Sprintf("type(%d)", id)
}

// Known reports whether id is a registered type.
func (t *Types) Known(id uint16) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.byID[id]
	return ok
}

// IDs returns all registered type ids, ascending.
func (t *Types) IDs() []uint16 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]uint16, 0, len(t.byID))
	for id := range t.byID {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func validTypeName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
