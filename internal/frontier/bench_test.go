package frontier

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// farFuture parks a waiter where no benchmark advance can release it, so the
// heap stays populated while the advance path is measured.
const farFuture = uint64(1) << 62

const benchNodes = 8

// parkWaiters pushes n never-released waiters onto the registry's predicates
// round-robin, sharing one done channel (they are never closed). White-box:
// real WaitFor parks a goroutine per waiter, which would dominate setup at
// the 1M scale this grid measures.
func parkWaiters(b *testing.B, reg *Registry, n int) {
	b.Helper()
	done := make(chan struct{})
	reg.mu.Lock()
	preds := make([]*predicate, 0, len(reg.preds))
	for _, p := range reg.preds {
		preds = append(preds, p)
	}
	for i := 0; i < n; i++ {
		p := preds[i%len(preds)]
		heap.Push(&p.waiters, &waiter{seq: farFuture + uint64(i), done: done})
	}
	reg.mu.Unlock()
}

// BenchmarkFrontierAdvance measures one batched stabilization round — every
// node's counters advance, every predicate goes dirty, one drain — across a
// predicate × parked-waiter grid. Parked waiters sit above the frontier, so
// their count must not show in the advance cost: the waiter heap makes the
// not-yet-satisfied population O(1) per drain, where the old sorted-slice
// scan made it O(waiters).
func BenchmarkFrontierAdvance(b *testing.B) {
	for _, g := range []struct{ preds, waiters int }{
		{1, 1_000},
		{1000, 1_000},
		{1000, 100_000},
		{1000, 1_000_000},
	} {
		b.Run(fmt.Sprintf("preds=%d/waiters=%d", g.preds, g.waiters), func(b *testing.B) {
			reg, tbl, _ := newTestRegistry(benchNodes)
			tbl.EnsureType(TypeReceived, 1, 0) // UpdateAll advances only existing rows
			reg.StartDeferred(time.Hour)       // notes only mark dirty; Flush is the tick
			defer reg.Close()
			for i := 0; i < g.preds; i++ {
				if err := reg.Register(fmt.Sprintf("p%d", i), "MIN($ALLWNODES)"); err != nil {
					b.Fatal(err)
				}
			}
			parkWaiters(b, reg, g.waiters)
			b.ResetTimer()
			var seq uint64
			for i := 0; i < b.N; i++ {
				seq++
				for node := 1; node <= benchNodes; node++ {
					tbl.UpdateAll(node, seq)
					reg.NoteNodeUpdate(node)
				}
				reg.Flush()
			}
			b.StopTimer()
			if got, err := reg.Frontier("p0"); err != nil || got != seq {
				b.Fatalf("frontier = %d, %v; want %d", got, err, seq)
			}
		})
	}
}

// BenchmarkWaiterReleaseDrain measures a drain that actually releases k
// waiters: park k below the next frontier value, advance, flush. The heap
// pops exactly the satisfied prefix in seq order.
func BenchmarkWaiterReleaseDrain(b *testing.B) {
	for _, k := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("waiters=%d", k), func(b *testing.B) {
			reg, tbl, _ := newTestRegistry(benchNodes)
			tbl.EnsureType(TypeReceived, 1, 0)
			reg.StartDeferred(time.Hour)
			defer reg.Close()
			if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
				b.Fatal(err)
			}
			var base uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				reg.mu.Lock()
				p := reg.preds["p"]
				for j := 1; j <= k; j++ {
					heap.Push(&p.waiters, &waiter{seq: base + uint64(j), done: make(chan struct{})})
				}
				reg.mu.Unlock()
				base += uint64(k)
				for node := 1; node <= benchNodes; node++ {
					tbl.UpdateAll(node, base)
				}
				reg.NoteNodeUpdate(1)
				b.StartTimer()
				reg.Flush()
			}
			b.StopTimer()
			if n := reg.WaiterCount(); n != 0 {
				b.Fatalf("%d waiters left parked", n)
			}
			b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "releases/s")
		})
	}
}

// BenchmarkDetachCancel measures mass cancellation: k parked waiters
// detached in random order, each an O(log n) heap removal. The old slice
// scan made this wave O(k²).
func BenchmarkDetachCancel(b *testing.B) {
	for _, k := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("waiters=%d", k), func(b *testing.B) {
			reg, _, _ := newTestRegistry(benchNodes)
			if err := reg.Register("p", "MIN($ALLWNODES)"); err != nil {
				b.Fatal(err)
			}
			order := rand.New(rand.NewSource(1)).Perm(k)
			done := make(chan struct{})
			ws := make([]*waiter, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				reg.mu.Lock()
				p := reg.preds["p"]
				for j := 0; j < k; j++ {
					ws[j] = &waiter{seq: farFuture + uint64(j), done: done}
					heap.Push(&p.waiters, ws[j])
				}
				reg.mu.Unlock()
				b.StartTimer()
				for _, j := range order {
					reg.detachWaiter(p, ws[j])
				}
			}
			b.StopTimer()
			if n := reg.WaiterCount(); n != 0 {
				b.Fatalf("%d waiters left parked", n)
			}
			b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "cancels/s")
		})
	}
}

// BenchmarkIdlePredicates measures the inverted index's insulation: one hot
// predicate reads received counters while idle predicates read persisted
// ones, and an inline-mode received advance must evaluate only the hot
// predicate — ns/op should stay flat as the idle population grows.
func BenchmarkIdlePredicates(b *testing.B) {
	for _, idle := range []int{0, 256, 4096} {
		b.Run(fmt.Sprintf("idle=%d", idle), func(b *testing.B) {
			reg, tbl, _ := newTestRegistry(benchNodes)
			if err := reg.Register("hot", "MIN($ALLWNODES)"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < idle; i++ {
				if err := reg.Register(fmt.Sprintf("idle%d", i), "MIN($ALLWNODES.persisted)"); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var seq uint64
			for i := 0; i < b.N; i++ {
				seq++
				for node := 1; node <= benchNodes; node++ {
					tbl.Update(node, TypeReceived, seq)
					reg.NoteCellUpdate(node, TypeReceived)
				}
			}
			b.StopTimer()
			if got, err := reg.Frontier("hot"); err != nil || got != seq {
				b.Fatalf("hot frontier = %d, %v; want %d", got, err, seq)
			}
		})
	}
}
