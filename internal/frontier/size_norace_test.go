//go:build !race

package frontier

// massCancelWaiters is the en-masse cancellation regression size: large
// enough that the old O(n) detach scan (O(n²) for the full cancellation
// wave) would blow the test timeout, small enough to park comfortably as
// goroutines.
const massCancelWaiters = 100_000
