// Public-API tests: everything here uses only the root stabilizer package
// and the apps/ facades, exactly as a downstream user would.
package stabilizer_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"stabilizer"
	"stabilizer/apps/backup"
	"stabilizer/apps/pubsub"
	"stabilizer/apps/quorum"
	"stabilizer/apps/wankv"
)

func threeNodeTopo() *stabilizer.Topology {
	return &stabilizer.Topology{
		Self: 1,
		Nodes: []stabilizer.TopologyNode{
			{Name: "A", AZ: "az1", Region: "west"},
			{Name: "B", AZ: "az2", Region: "west"},
			{Name: "C", AZ: "az3", Region: "east"},
		},
	}
}

func openCluster(t *testing.T, topo *stabilizer.Topology, network stabilizer.Network) []*stabilizer.Node {
	t.Helper()
	var nodes []*stabilizer.Node
	for i := 1; i <= topo.N(); i++ {
		n, err := stabilizer.Open(stabilizer.Config{Topology: topo.WithSelf(i), Network: network})
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			_ = n.Close()
		}
		_ = network.Close()
	})
	return nodes
}

func TestPublicAPISendWaitMonitor(t *testing.T) {
	nodes := openCluster(t, threeNodeTopo(), stabilizer.NewMemNetwork(nil))
	sender := nodes[0]

	if err := sender.RegisterPredicate("maj", "KTH_MIN(SIZEOF($ALLWNODES)/2+1, $ALLWNODES)"); err != nil {
		t.Fatal(err)
	}
	var fired sync.WaitGroup
	fired.Add(1)
	var once sync.Once
	cancel, err := sender.MonitorStabilityFrontier("maj", func(uint64) {
		once.Do(fired.Done)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	seq, err := sender.Send([]byte("public api"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := sender.WaitFor(ctx, seq, "maj"); err != nil {
		t.Fatal(err)
	}
	fired.Wait()
}

func TestPublicAPIPredicateBuilders(t *testing.T) {
	topo := stabilizer.EC2Topology(1)
	all := stabilizer.TableIII(topo)
	if len(all) != 6 || len(stabilizer.TableIIIOrder()) != 6 {
		t.Fatalf("TableIII = %v", all)
	}
	nodes := openCluster(t, topo, stabilizer.NewMemNetwork(stabilizer.EC2Matrix().Scaled(100)))
	for name, src := range all {
		if err := nodes[0].RegisterPredicate(name, src); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	for i, src := range []string{
		stabilizer.QuorumWrite([]int{1, 2, 3}, 2),
		stabilizer.QuorumRead([]int{1, 2, 3}, 2),
		stabilizer.ExcludeNodes([]int{8}),
		stabilizer.KOfRemote(2),
	} {
		if err := nodes[0].RegisterPredicate(fmt.Sprintf("x%d", i), src); err != nil {
			t.Fatalf("register %q: %v", src, err)
		}
	}
}

func TestPublicAPIBackupQuickPath(t *testing.T) {
	topo := threeNodeTopo()
	nodes := openCluster(t, topo, stabilizer.NewMemNetwork(nil))
	stores := make([]*wankv.Store, len(nodes))
	for i, n := range nodes {
		stores[i] = wankv.New(n)
	}
	svc := backup.New(stores[0])
	if err := nodes[0].RegisterPredicate("alldel", "MIN(($ALLWNODES-$MYWNODE).delivered)"); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("stabilizer"), 5000)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := svc.BackupWait(ctx, "f", data, "alldel")
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != len(data) {
		t.Fatalf("result = %+v", res)
	}
	got, err := backup.New(stores[2]).Restore(1, "f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restore: %v", err)
	}
}

func TestPublicAPIPubSub(t *testing.T) {
	nodes := openCluster(t, threeNodeTopo(), stabilizer.NewMemNetwork(nil))
	var brokers []*pubsub.Broker
	for _, n := range nodes {
		b, err := pubsub.New(n)
		if err != nil {
			t.Fatal(err)
		}
		brokers = append(brokers, b)
	}
	got := make(chan pubsub.Message, 1)
	brokers[1].Subscribe(func(m pubsub.Message) {
		select {
		case got <- m:
		default:
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for len(brokers[0].ActiveBrokers()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := brokers[0].PublishWait(ctx, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Payload) != "hello" {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestPublicAPIQuorum(t *testing.T) {
	nodes := openCluster(t, threeNodeTopo(), stabilizer.NewMemNetwork(nil))
	kvs := make([]*quorum.KV, len(nodes))
	for i, n := range nodes {
		kv, err := quorum.New(quorum.Config{Node: n, Members: []int{1, 2, 3}, Nw: 2, Nr: 2})
		if err != nil {
			t.Fatal(err)
		}
		kvs[i] = kv
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := kvs[0].Write(ctx, "k", []byte("value")); err != nil {
		t.Fatal(err)
	}
	got, _, err := kvs[2].Read(ctx, "k")
	if err != nil || string(got) != "value" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestPublicAPIStats(t *testing.T) {
	nodes := openCluster(t, threeNodeTopo(), stabilizer.NewMemNetwork(nil))
	sender := nodes[0]
	if err := sender.RegisterPredicate("maj", stabilizer.MajorityWNodes()); err != nil {
		t.Fatal(err)
	}
	seq, err := sender.Send([]byte("tracked"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.WaitFor(ctx, seq, "maj"); err != nil {
		t.Fatal(err)
	}
	var s stabilizer.Stats = sender.Stats()
	if s.Self != 1 || s.N != 3 {
		t.Fatalf("identity = %d/%d", s.Self, s.N)
	}
	if s.NextSeq != seq+1 {
		t.Fatalf("NextSeq = %d, want %d", s.NextSeq, seq+1)
	}
	if s.BytesSent == 0 || s.DataFramesSent < 2 {
		t.Fatalf("traffic counters empty: %+v", s)
	}
	if f, ok := s.Predicates["maj"]; !ok || f < seq {
		t.Fatalf("predicate frontier = %d (ok=%v)", f, ok)
	}
}

func TestPublicAPIWaitApplied(t *testing.T) {
	nodes := openCluster(t, threeNodeTopo(), stabilizer.NewMemNetwork(nil))
	owner := wankv.New(nodes[0])
	mirror := wankv.New(nodes[1])
	res, err := owner.Put("rw", []byte("mine"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := mirror.WaitApplied(ctx, 1, res.Seq); err != nil {
		t.Fatal(err)
	}
	v, err := mirror.GetFrom(1, "rw")
	if err != nil || string(v.Value) != "mine" {
		t.Fatalf("read-your-writes failed: %q, %v", v.Value, err)
	}
}

func TestPublicAPITopologyRoundTrip(t *testing.T) {
	topo := stabilizer.CloudLabTopology(2)
	raw := fmt.Sprintf(`{"self":%d,"nodes":[{"name":"X","az":"z1"},{"name":"Y","az":"z2"}]}`, 1)
	parsed, err := stabilizer.ParseTopology([]byte(raw))
	if err != nil || parsed.N() != 2 {
		t.Fatalf("parse: %v", err)
	}
	if topo.SelfNode().Name != "Utah2" {
		t.Fatalf("CloudLab self = %s", topo.SelfNode().Name)
	}
}

func TestPublicAPIAdaptive(t *testing.T) {
	net := stabilizer.NewMemNetwork(nil)
	cluster, err := stabilizer.OpenCluster(stabilizer.ClusterConfig{
		Topology: threeNodeTopo(),
		Network:  net,
		Adaptive: &stabilizer.AdaptiveSpec{
			Key:    "stable",
			Ladder: stabilizer.LadderWNodes(),
			Config: stabilizer.AdaptiveConfig{Target: time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cluster.Close()
		_ = net.Close()
	})
	n1 := cluster.Node(1)
	ctrl := n1.AdaptiveController("stable")
	if ctrl == nil {
		t.Fatal("no adaptive controller on node 1")
	}
	if ctrl.RungIndex() != 0 || ctrl.Rung().Name != "all" {
		t.Fatalf("initial rung = %d (%s)", ctrl.RungIndex(), ctrl.Rung().Name)
	}
	var _ stabilizer.AdaptiveDirection = stabilizer.AdaptiveDown
	var hooked []stabilizer.AdaptiveTransition
	cancel := ctrl.OnTransition(func(tr stabilizer.AdaptiveTransition) { hooked = append(hooked, tr) })
	defer cancel()

	// The adaptive predicate waits like any other.
	seq, err := n1.Send([]byte("adaptive public api"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := n1.WaitFor(ctx, seq, "stable"); err != nil {
		t.Fatal(err)
	}

	// A second controller over a CLI-form ladder on the same node.
	ladder, err := stabilizer.ParseLadder("all=MIN($ALLWNODES);one=KTH_MAX(1, $ALLWNODES)")
	if err != nil {
		t.Fatal(err)
	}
	ctrl2, err := n1.StartAdaptive("fast", ladder, stabilizer.AdaptiveConfig{Target: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := n1.AdaptiveControllers(); len(got) != 2 {
		t.Fatalf("AdaptiveControllers = %d, want 2", len(got))
	}
	if len(ctrl2.History()) != 0 || len(hooked) != 0 {
		t.Fatalf("transitions on a healthy cluster: %v / %v", ctrl2.History(), hooked)
	}
}
