// Adaptive example: closed-loop consistency on the user-defined ladder.
//
// The paper's predicates are static policy: the application says what
// "stable" means and waits. This example runs the SLO-driven controller on
// top — a ladder of predicates from strongest to weakest, and a target for
// how fast appends should stabilize. While the cluster is healthy, writers
// get the strongest rung (every mirror holds each update). When a mirror
// dies and stability stalls, the controller steps the ladder down on its
// own — writers resume under the weaker guarantee instead of blocking
// forever — and after the mirror comes back and the SLO has been healthy
// for the cooldown, it climbs back up rung by rung.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"stabilizer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := &stabilizer.Topology{
		Self: 1,
		Nodes: []stabilizer.TopologyNode{
			{Name: "Primary", AZ: "az1", Region: "west"},
			{Name: "MirrorA", AZ: "az2", Region: "west"},
			{Name: "MirrorB", AZ: "az3", Region: "east"},
			{Name: "MirrorC", AZ: "az4", Region: "east"},
		},
	}
	network := stabilizer.NewMemNetwork(nil)
	defer network.Close()

	open := func(i int, epoch uint64, adaptive *stabilizer.AdaptiveSpec) (*stabilizer.Node, error) {
		return stabilizer.Open(stabilizer.Config{
			Topology:       topo.WithSelf(i),
			Network:        network,
			Epoch:          epoch,
			HeartbeatEvery: 20 * time.Millisecond,
			PeerTimeout:    150 * time.Millisecond,
			Adaptive:       adaptive,
		})
	}

	// The ladder, strongest rung first: every mirror -> a majority of
	// mirrors -> any one mirror. The controller may only walk it one rung
	// at a time; demo-sized windows keep the run short.
	spec := &stabilizer.AdaptiveSpec{
		Key:    "stable",
		Ladder: stabilizer.LadderWNodes(),
		Config: stabilizer.AdaptiveConfig{
			Target:      50 * time.Millisecond,
			Objective:   0.9,
			ShortWindow: 400 * time.Millisecond,
			LongWindow:  1200 * time.Millisecond,
			Burn:        2,
			CheckEvery:  50 * time.Millisecond,
			MinDwell:    150 * time.Millisecond,
			Cooldown:    time.Second,
			StallAfter:  300 * time.Millisecond,
		},
	}

	nodes := make([]*stabilizer.Node, 4)
	for i := 1; i <= 4; i++ {
		var s *stabilizer.AdaptiveSpec
		if i == 1 {
			s = spec
		}
		n, err := open(i, 1, s)
		if err != nil {
			return err
		}
		nodes[i-1] = n
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				_ = n.Close()
			}
		}
	}()
	primary := nodes[0]

	ctrl := primary.AdaptiveController("stable")
	cancel := ctrl.OnTransition(func(tr stabilizer.AdaptiveTransition) {
		fmt.Printf("  >> controller: %-4s %s -> %s (%s)\n",
			tr.Direction, tr.FromRung.Name, tr.ToRung.Name, tr.Reason)
	})
	defer cancel()

	ctx, cancelCtx := context.WithTimeout(context.Background(), time.Minute)
	defer cancelCtx()
	write := func(label string) error {
		seq, err := primary.Send([]byte(label))
		if err != nil {
			return err
		}
		start := time.Now()
		if err := primary.WaitFor(ctx, seq, "stable"); err != nil {
			return err
		}
		fmt.Printf("write %-22q seq=%-3d stable in %-8v rung=%s\n",
			label, seq, time.Since(start).Round(time.Millisecond),
			ctrl.Rung().Name)
		return nil
	}

	fmt.Println("— healthy cluster: strongest rung —")
	for i := 1; i <= 3; i++ {
		if err := write(fmt.Sprintf("update-%d", i)); err != nil {
			return err
		}
	}

	fmt.Println("\n— MirrorC crashes: stability stalls, controller steps down —")
	_ = nodes[3].Close()
	nodes[3] = nil
	// This write blocks under the "all" rung until the stall detector
	// fires and the controller steps down — no operator, no OnPeerDown
	// policy, just the SLO loop. In this 4-node topology a majority of
	// W-nodes is 3, which the 3 mirrors only satisfy when all of them
	// ack — so the majority rung stalls too and the controller honestly
	// walks on to "one" before the write releases.
	if err := write("written-during-outage"); err != nil {
		return err
	}
	for i := 1; i <= 2; i++ {
		if err := write(fmt.Sprintf("degraded-%d", i)); err != nil {
			return err
		}
	}

	fmt.Println("\n— MirrorC restarts: backlog drains, controller climbs back —")
	restarted, err := open(4, 2, nil)
	if err != nil {
		return err
	}
	nodes[3] = restarted

	deadline := time.Now().Add(20 * time.Second)
	for ctrl.RungIndex() != 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("controller did not recover to the strongest rung (stuck on %q)", ctrl.Rung().Name)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := write("post-recovery"); err != nil {
		return err
	}

	fmt.Println("\ntransition history:")
	for _, tr := range ctrl.History() {
		fmt.Printf("  %s %-4s %s -> %s (%s)\n",
			tr.At.Format("15:04:05.000"), tr.Direction, tr.FromRung.Name, tr.ToRung.Name, tr.Reason)
	}
	fmt.Println("\nwrites held to the SLO across the outage; guarantee restored automatically")
	return nil
}
