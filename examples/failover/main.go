// Failover example: the paper's fault-tolerance story (§III-E) end to end.
//
//  1. A secondary data center crashes; the sender's heartbeat detector
//     fires, and the application drops the dead node from its predicates
//     with change_predicate — stalled writers resume immediately.
//
//  2. The primary itself "crashes" and restarts from a Checkpoint,
//     resuming sequence numbering exactly where it stopped; peers accept
//     the new incarnation and the stream continues with no gaps.
//
//     go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"stabilizer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := &stabilizer.Topology{
		Self: 1,
		Nodes: []stabilizer.TopologyNode{
			{Name: "Primary", AZ: "az1", Region: "west"},
			{Name: "MirrorA", AZ: "az2", Region: "west"},
			{Name: "MirrorB", AZ: "az3", Region: "east"},
			{Name: "MirrorC", AZ: "az4", Region: "east"},
		},
	}
	network := stabilizer.NewMemNetwork(nil)
	defer network.Close()

	open := func(i int) (*stabilizer.Node, error) {
		return stabilizer.Open(stabilizer.Config{
			Topology:       topo.WithSelf(i),
			Network:        network,
			HeartbeatEvery: 20 * time.Millisecond,
			PeerTimeout:    150 * time.Millisecond,
		})
	}
	nodes := make([]*stabilizer.Node, 4)
	for i := 1; i <= 4; i++ {
		n, err := open(i)
		if err != nil {
			return err
		}
		nodes[i-1] = n
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				_ = n.Close()
			}
		}
	}()
	primary := nodes[0]

	// Durability policy: every remote mirror must hold each update.
	if err := primary.RegisterPredicate("durable", stabilizer.AllWNodes()); err != nil {
		return err
	}

	// §III-E recovery policy: when a mirror dies, rebuild any predicate
	// that still watches it.
	primary.OnPeerDown(func(peer int) {
		name, _ := topo.NodeAt(peer)
		fmt.Printf("!! detected failure of %s ($%d); reconfiguring predicates\n", name.Name, peer)
		for _, key := range primary.Predicates() {
			deps, err := primary.PredicateDependsOn(key)
			if err != nil {
				continue
			}
			for _, d := range deps {
				if d == peer {
					_ = primary.ChangePredicate(key, stabilizer.ExcludeNodes([]int{peer}))
					break
				}
			}
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	write := func(label string) error {
		seq, err := primary.Send([]byte(label))
		if err != nil {
			return err
		}
		start := time.Now()
		if err := primary.WaitFor(ctx, seq, "durable"); err != nil {
			return err
		}
		fmt.Printf("write %-22q seq=%-3d durable in %v\n",
			label, seq, time.Since(start).Round(time.Millisecond))
		return nil
	}

	fmt.Println("— healthy cluster —")
	for i := 1; i <= 3; i++ {
		if err := write(fmt.Sprintf("update-%d", i)); err != nil {
			return err
		}
	}

	fmt.Println("\n— MirrorC crashes —")
	_ = nodes[3].Close()
	nodes[3] = nil
	// This write stalls until the failure detector fires and the
	// recovery policy drops MirrorC from the durability predicate.
	if err := write("written-during-outage"); err != nil {
		return err
	}
	fmt.Printf("predicate is now: %s\n", mustSource(primary, "durable"))

	fmt.Println("\n— primary crashes and restarts from checkpoint —")
	ckpt := primary.Checkpoint()
	_ = primary.Close()
	restarted, err := stabilizer.Open(stabilizer.Config{
		Topology:       topo.WithSelf(1),
		Network:        network,
		HeartbeatEvery: 20 * time.Millisecond,
		PeerTimeout:    150 * time.Millisecond,
		Checkpoint:     ckpt,
		Epoch:          2,
	})
	if err != nil {
		return err
	}
	nodes[0] = restarted
	primary = restarted
	fmt.Printf("restarted: next sequence = %d (no gap, no reuse)\n", primary.NextSeq())

	if err := primary.RegisterPredicate("durable", stabilizer.ExcludeNodes([]int{4})); err != nil {
		return err
	}
	for i := 1; i <= 2; i++ {
		if err := write(fmt.Sprintf("post-restart-%d", i)); err != nil {
			return err
		}
	}
	fmt.Println("\nall writes durable across both failures")
	return nil
}

func mustSource(n *stabilizer.Node, key string) string {
	src, err := n.PredicateSource(key)
	if err != nil {
		return "<" + err.Error() + ">"
	}
	return src
}
