// Quorum example: Gifford's quorum protocol (paper §IV-B) expressed as
// Stabilizer predicates. Three replicas hold the data; with Nw = Nr = 2
// every read quorum intersects every write quorum, so reads always see the
// latest committed write — even when served by a stale minority replica
// plus one fresh one.
//
//	go run ./examples/quorum
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"stabilizer"
	"stabilizer/apps/quorum"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quorum:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := stabilizer.CloudLabTopology(1)
	network := stabilizer.NewMemNetwork(stabilizer.CloudLabMatrix().Scaled(2))
	defer network.Close()

	members := []int{1, 3, 4} // Utah1, Wisconsin, Clemson hold replicas
	kvs := make([]*quorum.KV, topo.N())
	for i := 1; i <= topo.N(); i++ {
		n, err := stabilizer.Open(stabilizer.Config{Topology: topo.WithSelf(i), Network: network})
		if err != nil {
			return err
		}
		defer n.Close()
		kv, err := quorum.New(quorum.Config{Node: n, Members: members, Nw: 2, Nr: 2})
		if err != nil {
			return err
		}
		kvs[i-1] = kv
	}
	writer := kvs[1] // Utah2: a pure client, not a replica
	reader := kvs[0] // Utah1: a replica reading locally + one remote

	fmt.Printf("members=%v Nw=2 Nr=2\n", members)
	fmt.Printf("write predicate: %s\n\n", writer.WritePredicate())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for i := 1; i <= 3; i++ {
		val := fmt.Sprintf("balance=%d00", i)
		start := time.Now()
		ver, err := writer.Write(ctx, "account:alice", []byte(val))
		if err != nil {
			return fmt.Errorf("write: %w", err)
		}
		wLat := time.Since(start)

		start = time.Now()
		got, gotVer, err := reader.Read(ctx, "account:alice")
		if err != nil {
			return fmt.Errorf("read: %w", err)
		}
		fmt.Printf("write %q v%d in %v — quorum read saw %q v%d in %v\n",
			val, ver, wLat.Round(time.Millisecond),
			got, gotVer, time.Since(start).Round(time.Millisecond))
		if string(got) != val {
			return fmt.Errorf("quorum intersection violated: read %q, want %q", got, val)
		}
	}
	fmt.Println("\nevery read observed the latest committed write — Nw+Nr > N holds")
	return nil
}
