// Quickstart: a three-node Stabilizer cluster on an in-process emulated
// WAN. One node streams updates; predicates written in the DSL decide when
// they count as "stable".
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"stabilizer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Three data centers; Tokyo is far away.
	topo := &stabilizer.Topology{
		Self: 1,
		Nodes: []stabilizer.TopologyNode{
			{Name: "Frankfurt", AZ: "eu1", Region: "EU"},
			{Name: "Dublin", AZ: "eu2", Region: "EU"},
			{Name: "Tokyo", AZ: "ap1", Region: "AP"},
		},
	}
	matrix := stabilizer.NewMatrix()
	matrix.SetSymmetric(1, 2, stabilizer.Link{OneWayLatency: 10 * time.Millisecond, BandwidthBps: stabilizer.Mbps(500)})
	matrix.SetSymmetric(1, 3, stabilizer.Link{OneWayLatency: 120 * time.Millisecond, BandwidthBps: stabilizer.Mbps(80)})
	matrix.SetSymmetric(2, 3, stabilizer.Link{OneWayLatency: 115 * time.Millisecond, BandwidthBps: stabilizer.Mbps(80)})
	network := stabilizer.NewMemNetwork(matrix)
	defer network.Close()

	// One node per data center, booted together as a cluster (in one
	// process for the demo; in a real deployment each runs in its own
	// data center via stabilizer.Open).
	cluster, err := stabilizer.OpenCluster(stabilizer.ClusterConfig{
		Topology: topo,
		Network:  network,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	frankfurt := cluster.Node(1)

	// Receivers print what they mirror.
	for i := 2; i <= topo.N(); i++ {
		name := topo.Nodes[i-1].Name
		cluster.Node(i).OnDeliver(func(m stabilizer.Message) {
			log.Printf("[%s] mirrored message %d: %q", name, m.Seq, m.Payload)
		})
	}

	// Two consistency models for the same stream:
	//   "eu"  — stable once Dublin (same region) has it,
	//   "all" — stable once every node has it.
	if err := frankfurt.RegisterPredicate("eu", "MIN($WNODE_Dublin)"); err != nil {
		return err
	}
	if err := frankfurt.RegisterPredicate("all", stabilizer.AllWNodes()); err != nil {
		return err
	}

	// Watch the global frontier advance.
	cancel, err := frankfurt.MonitorStabilityFrontier("all", func(seq uint64) {
		log.Printf("[Frankfurt] globally stable through message %d", seq)
	})
	if err != nil {
		return err
	}
	defer cancel()

	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	for i := 1; i <= 3; i++ {
		payload := fmt.Sprintf("update #%d", i)
		seq, err := frankfurt.Send([]byte(payload))
		if err != nil {
			return err
		}
		start := time.Now()
		if err := frankfurt.WaitFor(ctx, seq, "eu"); err != nil {
			return err
		}
		euAt := time.Since(start)
		if err := frankfurt.WaitFor(ctx, seq, "all"); err != nil {
			return err
		}
		log.Printf("[Frankfurt] %q: EU-stable in %v, world-stable in %v",
			payload, euAt.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	}

	// The consistency model is data, not code: tighten it at runtime.
	if err := frankfurt.ChangePredicate("eu", "MIN($WNODE_Dublin, $WNODE_Tokyo.delivered)"); err != nil {
		return err
	}
	seq, err := frankfurt.Send([]byte("after reconfiguration"))
	if err != nil {
		return err
	}
	start := time.Now()
	if err := frankfurt.WaitFor(ctx, seq, "eu"); err != nil {
		return err
	}
	log.Printf("[Frankfurt] reconfigured predicate now also waits for Tokyo delivery: %v",
		time.Since(start).Round(time.Millisecond))
	return nil
}
