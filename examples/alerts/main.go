// SLO burn-rate alerting, in process: the runnable twin of the Prometheus
// rules in stability-slo.rules.yml. A three-node cluster streams updates
// over an emulated WAN while an SLOMonitor watches the sender's
// stability-latency histogram and fires multiwindow burn alerts — no
// Prometheus server required.
//
// The demo registers two consistency models: "eu" stabilizes within the
// ~10ms European ring and comfortably meets a 33ms objective, while "all"
// must cross the 120ms Tokyo link and burns its budget on every message.
// Watch the "all" monitor fire and then resolve once traffic stops.
//
//	go run ./examples/alerts
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"stabilizer"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "alerts:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := &stabilizer.Topology{
		Self: 1,
		Nodes: []stabilizer.TopologyNode{
			{Name: "Frankfurt", AZ: "eu1", Region: "EU"},
			{Name: "Dublin", AZ: "eu2", Region: "EU"},
			{Name: "Tokyo", AZ: "ap1", Region: "AP"},
		},
	}
	matrix := stabilizer.NewMatrix()
	matrix.SetSymmetric(1, 2, stabilizer.Link{OneWayLatency: 10 * time.Millisecond, BandwidthBps: stabilizer.Mbps(500)})
	matrix.SetSymmetric(1, 3, stabilizer.Link{OneWayLatency: 120 * time.Millisecond, BandwidthBps: stabilizer.Mbps(80)})
	matrix.SetSymmetric(2, 3, stabilizer.Link{OneWayLatency: 115 * time.Millisecond, BandwidthBps: stabilizer.Mbps(80)})
	network := stabilizer.NewMemNetwork(matrix)
	defer network.Close()

	cluster, err := stabilizer.OpenCluster(stabilizer.ClusterConfig{
		Topology: topo,
		Network:  network,
		Metrics:  stabilizer.NewMetricsRegistry(),
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	frankfurt := cluster.Node(1)

	if err := frankfurt.RegisterPredicate("eu", "MIN($WNODE_Dublin)"); err != nil {
		return err
	}
	if err := frankfurt.RegisterPredicate("all", stabilizer.AllWNodes()); err != nil {
		return err
	}

	// SLO: 99% of stabilizations complete within ~33.5ms (2^25 ns — the
	// histogram's buckets are powers of two, so thresholds snap to bucket
	// bounds, exactly like the `le` selector in the Prometheus rules).
	// The windows are demo-scale seconds; production rules use the
	// 5m/1h pairing from stability-slo.rules.yml.
	slo := func(pred string) (*stabilizer.SLOMonitor, error) {
		return stabilizer.NewSLOMonitor(
			frankfurt.StabilityLatencyHistogram(pred),
			stabilizer.SLOConfig{
				Name:        pred,
				Threshold:   1 << 25, // ns
				Objective:   0.99,
				ShortWindow: time.Second,
				LongWindow:  4 * time.Second,
				Burn:        10,
				CheckEvery:  250 * time.Millisecond,
				OnAlert: func(a stabilizer.BurnAlert) {
					state := "RESOLVED"
					if a.Firing {
						state = "FIRING"
					}
					log.Printf("[alert] %-8s %s: burn %.1fx (short) / %.1fx (long)",
						state, a.Name, a.ShortBurn, a.LongBurn)
				},
			})
	}
	for _, pred := range []string{"eu", "all"} {
		m, err := slo(pred)
		if err != nil {
			return err
		}
		defer m.Close()
	}

	// Traffic: every message waits on both predicates, so both histograms
	// observe every send. "eu" stabilizes in ~20ms, "all" in ~240ms.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	log.Printf("sending for 5s; 'all' must cross the 120ms Tokyo link and will burn")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		seq, err := frankfurt.Send([]byte("update"))
		if err != nil {
			return err
		}
		for _, pred := range []string{"eu", "all"} {
			if err := frankfurt.WaitFor(ctx, seq, pred); err != nil {
				return err
			}
		}
	}

	log.Printf("traffic stopped; waiting for the burn to resolve")
	time.Sleep(6 * time.Second)
	return nil
}
