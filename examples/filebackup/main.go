// File backup example: the paper's Dropbox-like service (§V-A) on the
// Fig. 2 EC2 topology. A file is backed up under different service levels
// — from "one remote copy" to "every region" — and restored from a remote
// mirror.
//
//	go run ./examples/filebackup
package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"stabilizer"
	"stabilizer/apps/backup"
	"stabilizer/apps/wankv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "filebackup:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := stabilizer.EC2Topology(1)
	// Compress emulated latencies 5x so the demo is snappy.
	network := stabilizer.NewMemNetwork(stabilizer.EC2Matrix().Scaled(5))
	defer network.Close()

	var nodes []*stabilizer.Node
	for i := 1; i <= topo.N(); i++ {
		n, err := stabilizer.Open(stabilizer.Config{Topology: topo.WithSelf(i), Network: network})
		if err != nil {
			return err
		}
		defer n.Close()
		nodes = append(nodes, n)
	}

	// Every node runs the WAN K/V store; node 1 also runs the backup
	// front end that users talk to.
	stores := make([]*wankv.Store, len(nodes))
	for i, n := range nodes {
		stores[i] = wankv.New(n)
	}
	svc := backup.New(stores[0])

	// The paper's Table III service levels, built for this topology.
	for name, src := range stabilizer.TableIII(topo) {
		if err := stores[0].RegisterPredicate(name, src); err != nil {
			return err
		}
		fmt.Printf("SLA %-16s = %s\n", name, src)
	}

	// Back one 2 MB file up and watch each SLA trigger.
	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(1)).Read(data)
	start := time.Now()
	res, err := svc.Backup("tax-records-2025.zip", data)
	if err != nil {
		return err
	}
	fmt.Printf("\nbacked up %d bytes as %d packets (seq %d..%d); waiting on SLAs:\n",
		res.Bytes, res.Chunks, res.FirstSeq, res.LastSeq)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, sla := range []string{"OneWNode", "OneRegion", "MajorityRegions", "MajorityWNodes", "AllRegions", "AllWNodes"} {
		if err := svc.Wait(ctx, res, sla); err != nil {
			return fmt.Errorf("wait %s: %w", sla, err)
		}
		fmt.Printf("  %-16s satisfied after %v\n", sla, time.Since(start).Round(time.Millisecond))
	}

	// Restore from the Ohio mirror and verify bit-for-bit. "Received"
	// stability says the bytes are in Stabilizer's hands; before reading
	// the mirror we wait for the stronger "delivered" level, which means
	// the K/V stores have applied the updates.
	if err := stores[0].RegisterPredicate("AllDelivered", "MIN(($ALLWNODES-$MYWNODE).delivered)"); err != nil {
		return err
	}
	if err := svc.Wait(ctx, res, "AllDelivered"); err != nil {
		return err
	}
	ohio := 8
	restoreSvc := backup.New(stores[ohio-1])
	got, err := restoreSvc.Restore(1, "tax-records-2025.zip")
	if err != nil {
		return fmt.Errorf("restore from Ohio mirror: %w", err)
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("restored file differs from original")
	}
	fmt.Printf("\nrestored %d bytes from the Ohio mirror — content verified\n", len(got))
	return nil
}
