// Pub/sub example: the paper's broker prototype (§V-B) with dynamic
// reconfiguration (§VI-D). A publisher on Utah1 streams messages to
// subscribers across the CloudLab WAN; when the subscriber at the slowest
// site goes away, the delivery predicate reconfigures itself and the
// publisher stops waiting for that site.
//
//	go run ./examples/pubsub
package main

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"stabilizer"
	"stabilizer/apps/pubsub"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pubsub:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := stabilizer.CloudLabTopology(1)
	network := stabilizer.NewMemNetwork(stabilizer.CloudLabMatrix().Scaled(2))
	defer network.Close()

	var brokers []*pubsub.Broker
	for i := 1; i <= topo.N(); i++ {
		n, err := stabilizer.Open(stabilizer.Config{Topology: topo.WithSelf(i), Network: network})
		if err != nil {
			return err
		}
		defer n.Close()
		b, err := pubsub.New(n)
		if err != nil {
			return err
		}
		brokers = append(brokers, b)
	}
	publisher := brokers[0]

	// Subscribers at every remote site; Clemson (node 4, the slowest
	// WAN link) keeps its cancel function.
	var delivered atomic.Int64
	var cancelClemson func()
	for i := 2; i <= topo.N(); i++ {
		cancel := brokers[i-1].Subscribe(func(m pubsub.Message) {
			delivered.Add(1)
		})
		if i == 4 {
			cancelClemson = cancel
		}
	}
	time.Sleep(300 * time.Millisecond) // announcements settle
	fmt.Printf("active remote brokers: %v\n", publisher.ActiveBrokers())
	fmt.Printf("delivery predicate:    %s\n\n", publisher.DeliveryPredicate())

	ctx, cancelCtx := context.WithTimeout(context.Background(), time.Minute)
	defer cancelCtx()

	measure := func(label string, n int) error {
		var total time.Duration
		for i := 0; i < n; i++ {
			start := time.Now()
			if _, err := publisher.PublishWait(ctx, []byte("tick")); err != nil {
				return err
			}
			total += time.Since(start)
		}
		fmt.Printf("%-28s avg publish→all-subscribers latency: %v\n",
			label, (total / time.Duration(n)).Round(time.Millisecond))
		return nil
	}

	if err := measure("with Clemson subscribed:", 20); err != nil {
		return err
	}

	// The Clemson subscriber leaves; the broker announces it and the
	// publisher's predicate drops the slow site from the observation
	// list — no code changes, no restart.
	cancelClemson()
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("\nClemson unsubscribed\n")
	fmt.Printf("active remote brokers: %v\n", publisher.ActiveBrokers())
	fmt.Printf("delivery predicate:    %s\n\n", publisher.DeliveryPredicate())

	if err := measure("without Clemson:", 20); err != nil {
		return err
	}
	fmt.Printf("\n%d messages delivered to subscribers in total\n", delivered.Load())
	return nil
}
