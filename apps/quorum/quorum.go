// Package quorum exposes the quorum-protocol K/V (paper §IV-B) as part of
// Stabilizer's public API: writes complete once Nw member replicas hold
// them (a KTH_MIN write predicate), reads collect Nr member responses and
// return the freshest value; Nw+Nr > N guarantees intersection.
package quorum

import (
	iq "stabilizer/internal/quorum"
)

// Re-exported types.
type (
	// KV is one node's quorum endpoint.
	KV = iq.KV
	// Config parameterizes a quorum KV.
	Config = iq.Config
)

// Re-exported errors.
var (
	ErrBadQuorum   = iq.ErrBadQuorum
	ErrNotFound    = iq.ErrNotFound
	ErrReadTimeout = iq.ErrReadTimeout
)

// New creates a quorum endpoint and registers its handlers on the node.
func New(cfg Config) (*KV, error) { return iq.New(cfg) }
