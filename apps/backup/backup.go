// Package backup exposes the Dropbox-like geo-replicated file backup
// service (paper §V-A, §VI-B) as part of Stabilizer's public API: files
// are chunked into ≤8 KB packets, replicated through the WAN K/V store,
// and each backup can wait on a user-chosen consistency model (Table III
// predicates or custom DSL).
package backup

import (
	ifb "stabilizer/internal/filebackup"
	iwankv "stabilizer/internal/wankv"
)

// DefaultChunkSize is the paper's 8 KB packet bound.
const DefaultChunkSize = ifb.DefaultChunkSize

// Re-exported types.
type (
	// Service is one node's backup endpoint.
	Service = ifb.Service
	// Result describes a completed local backup.
	Result = ifb.Result
	// Option configures a Service.
	Option = ifb.Option
)

// Re-exported errors.
var (
	ErrNotBackedUp = ifb.ErrNotBackedUp
	ErrCorrupt     = ifb.ErrCorrupt
)

// New attaches a backup service to a WAN K/V store.
func New(kv *iwankv.Store, opts ...Option) *Service { return ifb.New(kv, opts...) }

// WithChunkSize overrides the 8 KB default packet bound.
func WithChunkSize(n int) Option { return ifb.WithChunkSize(n) }
