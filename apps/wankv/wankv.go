// Package wankv exposes the geo-replicated WAN K/V store (paper §V-A) —
// a versioned object store where each WAN node owns a pool of keys it
// alone updates and mirrors every other node's pool read-only — as part of
// Stabilizer's public API. See the internal implementation package
// stabilizer/internal/wankv for design details.
package wankv

import (
	"stabilizer/internal/core"
	iwankv "stabilizer/internal/wankv"
)

// Re-exported types.
type (
	// Store is one node's view of the geo-replicated K/V system.
	Store = iwankv.Store
	// PutResult describes a committed local write.
	PutResult = iwankv.PutResult
	// Option configures a Store.
	Option = iwankv.Option
)

// Re-exported errors.
var (
	ErrBadUpdate = iwankv.ErrBadUpdate
	ErrBadOrigin = iwankv.ErrBadOrigin
)

// New attaches a geo-replicated K/V store to a Stabilizer node.
func New(node *core.Node, opts ...Option) *Store { return iwankv.New(node, opts...) }

// WithApplyHook registers a callback invoked after each replicated update.
func WithApplyHook(fn func(origin int, key string, ver uint64)) Option {
	return iwankv.WithApplyHook(fn)
}
