// Package pubsub exposes the Stabilizer pub/sub broker prototype (paper
// §V-B) as part of the public API: publish multicasts through the
// asynchronous data plane, subscribers register callbacks, and the
// publisher's delivery predicate reconfigures itself dynamically as remote
// brokers gain and lose subscribers (§VI-D).
package pubsub

import (
	"stabilizer/internal/core"
	ips "stabilizer/internal/pubsub"
)

// DeliveryPredicateKey is the broker's managed delivery predicate for the
// default topic.
const DeliveryPredicateKey = ips.DeliveryPredicateKey

// DefaultTopic is the implicit topic of Publish/Subscribe.
const DefaultTopic = ips.DefaultTopic

// Re-exported types.
type (
	// Broker is one data center's pub/sub endpoint.
	Broker = ips.Broker
	// Message is one published message as seen by a subscriber.
	Message = ips.Message
	// SubscribeFunc consumes delivered messages.
	SubscribeFunc = ips.SubscribeFunc
	// Option configures a Broker.
	Option = ips.Option
)

// Re-exported errors.
var (
	// ErrNoSubscribers is returned by PublishWait with no active brokers.
	ErrNoSubscribers = ips.ErrNoSubscribers
	// ErrBadTopic rejects over-long topic names.
	ErrBadTopic = ips.ErrBadTopic
)

// New attaches a broker to a Stabilizer node.
func New(node *core.Node, opts ...Option) (*Broker, error) { return ips.New(node, opts...) }

// WithRetention keeps the most recent limit messages per topic and replays
// them to late local subscribers.
func WithRetention(limit int) Option { return ips.WithRetention(limit) }

// DeliveryPredicateKeyFor returns the managed predicate key for a topic.
func DeliveryPredicateKeyFor(topic string) string { return ips.DeliveryPredicateKeyFor(topic) }
