// Package-level benchmarks: one testing.B benchmark per table and figure
// of the paper's evaluation (§VI), plus the design-choice ablations from
// DESIGN.md. Each benchmark runs the corresponding internal/bench
// experiment in its Short configuration; run
//
//	go test -bench=. -benchmem
//
// for the quick pass, or cmd/stabilizer-bench for full paper-scale runs
// with printed tables (see EXPERIMENTS.md for recorded results).
package stabilizer_test

import (
	"io"
	"testing"

	"stabilizer/internal/bench"
)

// benchOpts is the shared Short configuration. Latency-sensitive
// experiments override TimeScale themselves where fidelity demands it.
func benchOpts() bench.Options {
	return bench.Options{Out: io.Discard, TimeScale: 10, Short: true}
}

func BenchmarkTable1NetworkEmulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2NetworkEmulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Predicates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroDSLCompileAndEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.MicroDSL(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3QuorumRead(b *testing.B) {
	opts := benchOpts()
	opts.TimeScale = 5 // latency fidelity matters here
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig3(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4TraceShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5StabilityFrontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6FileSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ImprovementOverPaxos*100, "impr%")
	}
}

func BenchmarkFig7PubSub(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Reconfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCompiledVsInterpreted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationDSL(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "speedup")
	}
}

func BenchmarkAblationControlPlaneSeparation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationControlPlane(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "speedup")
	}
}

func BenchmarkAblationUpcallBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationBatching(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio, "msgs/upcall")
	}
}
